//! `exp_kernel_bench`: compute-kernel benchmark and bit-identity gate.
//!
//! Measures the kernel tiers — scalar reference, cache-blocked, explicit
//! SIMD (AVX2/AVX-512 runtime dispatch), and best-backend + row-partitioned
//! threads — on model-shaped matrix products (GFLOP/s), then at the system
//! level:
//!
//! * **train-epoch** wall clock, serial vs. threaded trainer — and the
//!   trained parameter stores must be *bit-identical* (same RNG schedule,
//!   same bits per kernel call, therefore same weights);
//! * **batch-estimate** wall clock through `estimate_batch` /
//!   `estimate_batch_par`, values compared bitwise;
//! * **evaluate fan-out**: `report::evaluate` vs `report::evaluate_par`.
//!
//! Writes `BENCH_kernels.json` (override the path with `CARDEST_BENCH_OUT`)
//! and exits non-zero when a gate fails:
//!
//! 1. every blocked/SIMD/threaded result must match the scalar kernels bit
//!    for bit (always enforced);
//! 2. with >1 hardware thread, the threaded paths must not be *slower* than
//!    scalar on the headline measurements (the CI gate at quick scale);
//! 3. on hosts with AVX2 (or better), the explicit-SIMD backend must not be
//!    slower than the blocked backend (best ratio across shapes, with a 5%
//!    noise tolerance).
//!
//! The ≥2× speedup target applies on a multi-core runner; the report prints
//! where each measurement landed. Honors `CARDEST_SCALE` (`quick` | `full`).

use cardest_bench::{report, Scale};
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, Trainer, TrainerOptions};
use cardest_core::{
    CardNetEstimator, CardinalityEstimator, KernelBackend, Parallelism, PreparedQuery,
};
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::Workload;
use cardest_fx::build_extractor;
use cardest_nn::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct KernelRow {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    /// Whether the left operand is binary-sparse — those shapes route every
    /// backend through the same zero-skipping saxpy order, so their
    /// simd-vs-blocked ratio says nothing about the tile kernels.
    sparse: bool,
    scalar_gflops: f64,
    blocked_gflops: f64,
    simd_gflops: f64,
    threaded_gflops: f64,
}

impl KernelRow {
    fn threaded_speedup(&self) -> f64 {
        self.threaded_gflops / self.scalar_gflops.max(1e-12)
    }

    fn simd_vs_blocked(&self) -> f64 {
        self.simd_gflops / self.blocked_gflops.max(1e-12)
    }
}

struct WallClockRow {
    name: &'static str,
    serial_s: f64,
    threaded_s: f64,
}

impl WallClockRow {
    fn speedup(&self) -> f64 {
        self.serial_s / self.threaded_s.max(1e-12)
    }
}

fn main() -> ExitCode {
    let scale = Scale::from_env();
    let threads = Parallelism::auto().thread_count();
    let simd_active = KernelBackend::simd_available();
    eprintln!(
        "# exp_kernel_bench (scalar vs blocked vs simd vs threaded kernels), scale = {}, \
         {} hardware threads, simd = {} (default backend: {})",
        scale.label(),
        threads,
        KernelBackend::simd_support(),
        KernelBackend::default_backend().label(),
    );

    // Bit-identity breaks and performance-gate misses are tracked apart:
    // both fail the run, but only the former flips the JSON's
    // `bit_identity_pass` (a slow runner must never read as a determinism
    // break).
    let mut identity_failures: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // ── 1. Kernel microbench + bit-identity on model-shaped products ─────
    let shapes: &[(&'static str, usize, usize, usize, bool)] = if scale.label() == "full" {
        &[
            ("train-minibatch", 64, 176, 96, true),
            ("batch-estimate", 256, 176, 96, true),
            ("dense-large", 384, 256, 256, false),
        ]
    } else {
        &[
            ("train-minibatch", 64, 176, 96, true),
            ("batch-estimate", 256, 176, 96, true),
            ("dense-large", 256, 256, 192, false),
        ]
    };
    let par = Parallelism::threads(threads);
    let pin_blocked = Parallelism::serial().with_backend(KernelBackend::Blocked);
    let pin_simd = Parallelism::serial().with_backend(KernelBackend::Simd);
    let mut kernel_rows: Vec<KernelRow> = Vec::new();
    println!("## matmul kernels (GFLOP/s, best of 5)\n");
    println!(
        "{:<16} {:>14} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "shape", "m×k×n", "scalar", "blocked", "simd", "threaded", "speedup"
    );
    for &(name, m, k, n, sparse) in shapes {
        let a = if sparse {
            // Binary-sparse left operand, like extracted features.
            Matrix::from_fn(m, k, |r, c| f32::from(u8::from((r * 13 + c * 7) % 4 == 0)))
        } else {
            let mut rng = StdRng::seed_from_u64(11);
            Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0f32..1.0))
        };
        let mut rng = StdRng::seed_from_u64(23);
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0f32..1.0));

        let reference = a.matmul(&b);
        for (label, p) in [
            (
                "scalar-backend",
                Parallelism::serial().with_backend(KernelBackend::Scalar),
            ),
            ("blocked", pin_blocked),
            ("simd", pin_simd),
            (
                "simd threads=2",
                Parallelism::exact_threads(2).with_backend(KernelBackend::Simd),
            ),
            ("threaded", par),
            ("threads=2", Parallelism::exact_threads(2)),
        ] {
            let got = a.matmul_with(&b, p);
            if !bits_equal(&reference, &got) {
                identity_failures.push(format!("{name}: {label} matmul diverged from scalar"));
            }
        }
        // The other two products are gated here too (the proptests cover
        // them at small shapes; this is the benchmark-scale check).
        let bt = b.transpose();
        let at = a.transpose();
        let want_mt = a.matmul_t(&bt);
        let want_tm = at.t_matmul(&b);
        for (label, p) in [
            ("blocked", pin_blocked),
            ("simd", pin_simd),
            ("threaded", par),
        ] {
            if !bits_equal(&want_mt, &a.matmul_t_with(&bt, p)) {
                identity_failures.push(format!("{name}: {label} matmul_t diverged from scalar"));
            }
            if !bits_equal(&want_tm, &at.t_matmul_with(&b, p)) {
                identity_failures.push(format!("{name}: {label} t_matmul diverged from scalar"));
            }
        }

        let flops = 2.0 * (m * k * n) as f64;
        let scalar = best_gflops(flops, || std::hint::black_box(a.matmul(&b)));
        let blocked = best_gflops(flops, || {
            std::hint::black_box(a.matmul_with(&b, pin_blocked))
        });
        let simd = best_gflops(flops, || std::hint::black_box(a.matmul_with(&b, pin_simd)));
        let threaded = best_gflops(flops, || std::hint::black_box(a.matmul_with(&b, par)));
        let row = KernelRow {
            name,
            m,
            k,
            n,
            sparse,
            scalar_gflops: scalar,
            blocked_gflops: blocked,
            simd_gflops: simd,
            threaded_gflops: threaded,
        };
        println!(
            "{:<16} {:>14} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>8.2}x",
            row.name,
            format!("{m}x{k}x{n}"),
            row.scalar_gflops,
            row.blocked_gflops,
            row.simd_gflops,
            row.threaded_gflops,
            row.threaded_speedup()
        );
        kernel_rows.push(row);
    }

    // ── 2. Train-epoch wall clock, serial vs threaded (same bits out) ────
    let ds = hm_imagenet(SynthConfig::new(scale.n_records.min(1500), scale.seed));
    let fx = build_extractor(&ds, scale.tau_max, 1);
    let split = Workload::sample_from(&ds, 0.20, 10, 3).split(5);
    let cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
    let epochs = if scale.label() == "full" { 4 } else { 2 };
    let train_opts = |threads: usize| TrainerOptions {
        epochs,
        vae_epochs: 1,
        threads,
        ..TrainerOptions::quick()
    };

    let t0 = Instant::now();
    let (serial_trainer, _) = train_cardnet(
        fx.as_ref(),
        &split.train,
        &split.valid,
        cfg.clone(),
        train_opts(1),
    );
    let serial_train_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let (threaded_trainer, _) = train_cardnet(
        fx.as_ref(),
        &split.train,
        &split.valid,
        cfg.clone(),
        train_opts(threads),
    );
    let threaded_train_s = t0.elapsed().as_secs_f64();
    if !stores_equal(&serial_trainer, &threaded_trainer) {
        identity_failures.push("threaded training produced different weights than serial".into());
    }
    let train_row = WallClockRow {
        name: "train-epochs",
        serial_s: serial_train_s,
        threaded_s: threaded_train_s,
    };
    println!(
        "\n## training ({} epochs): serial {:.2}s, threaded({}) {:.2}s — {:.2}x, weights bit-identical: {}",
        epochs,
        train_row.serial_s,
        threads,
        train_row.threaded_s,
        train_row.speedup(),
        stores_equal(&serial_trainer, &threaded_trainer),
    );

    // ── 3. Batch-estimate wall clock through the estimator API ───────────
    let est = CardNetEstimator::from_trainer(fx, serial_trainer);
    let batch_size = if scale.label() == "full" { 512 } else { 256 };
    let queries: Vec<_> = (0..batch_size)
        .map(|i| ds.records[(i * 31) % ds.len()].clone())
        .collect();
    let thetas: Vec<f64> = (0..batch_size)
        .map(|i| ds.theta_max * (i % 17) as f64 / 16.0)
        .collect();
    let prepared: Vec<PreparedQuery> = queries.iter().map(|q| est.prepare(q)).collect();
    let refs: Vec<&PreparedQuery> = prepared.iter().collect();

    let serial_values = est.estimate_batch(&refs, &thetas);
    let threaded_values = est.estimate_batch_par(&refs, &thetas, par);
    let batch_identical = serial_values
        .iter()
        .zip(&threaded_values)
        .all(|(a, b)| a.value.to_bits() == b.value.to_bits());
    if !batch_identical {
        identity_failures.push("estimate_batch_par diverged from estimate_batch".into());
    }
    // Every pinned backend serves the same bits through the batched path.
    for backend in [
        KernelBackend::Scalar,
        KernelBackend::Blocked,
        KernelBackend::Simd,
    ] {
        let pinned =
            est.estimate_batch_par(&refs, &thetas, Parallelism::serial().with_backend(backend));
        if !serial_values
            .iter()
            .zip(&pinned)
            .all(|(a, b)| a.value.to_bits() == b.value.to_bits())
        {
            identity_failures.push(format!(
                "estimate_batch_par({}) diverged from estimate_batch",
                backend.label()
            ));
        }
    }
    let serial_batch_s = best_seconds(3, || {
        std::hint::black_box(est.estimate_batch(&refs, &thetas));
    });
    let threaded_batch_s = best_seconds(3, || {
        std::hint::black_box(est.estimate_batch_par(&refs, &thetas, par));
    });
    let batch_row = WallClockRow {
        name: "batch-estimate",
        serial_s: serial_batch_s,
        threaded_s: threaded_batch_s,
    };
    println!(
        "## batch-estimate ({batch_size} queries): serial {:.4}s, threaded {:.4}s — {:.2}x, bit-identical: {batch_identical}",
        batch_row.serial_s,
        batch_row.threaded_s,
        batch_row.speedup(),
    );

    // ── 4. evaluate fan-out ──────────────────────────────────────────────
    let serial_acc = report::evaluate(&est, &split.test);
    let par_acc = report::evaluate_par(&est, &split.test, threads);
    let eval_identical = serial_acc.mse.to_bits() == par_acc.mse.to_bits()
        && serial_acc.mean_q_error.to_bits() == par_acc.mean_q_error.to_bits();
    if !eval_identical {
        identity_failures.push("evaluate_par accuracy diverged from serial evaluate".into());
    }
    let serial_eval_s = best_seconds(3, || {
        std::hint::black_box(report::evaluate(&est, &split.test));
    });
    let par_eval_s = best_seconds(3, || {
        std::hint::black_box(report::evaluate_par(&est, &split.test, threads));
    });
    let eval_row = WallClockRow {
        name: "evaluate",
        serial_s: serial_eval_s,
        threaded_s: par_eval_s,
    };
    println!(
        "## evaluate ({} queries): serial {:.4}s, fan-out {:.4}s — {:.2}x, bit-identical: {eval_identical}",
        split.test.len(),
        eval_row.serial_s,
        eval_row.threaded_s,
        eval_row.speedup(),
    );

    // ── Gates ────────────────────────────────────────────────────────────
    let best_wall_speedup = [&train_row, &batch_row, &eval_row]
        .iter()
        .map(|r| r.speedup())
        .fold(0.0f64, f64::max);
    let best_kernel_speedup = kernel_rows
        .iter()
        .map(KernelRow::threaded_speedup)
        .fold(0.0f64, f64::max);
    if threads > 1 {
        // The CI gate: threading must never be a slowdown at quick scale.
        // Small tolerance absorbs wall-clock noise on loaded runners.
        if best_kernel_speedup < 0.95 {
            failures.push(format!(
                "threaded kernels slower than scalar: best speedup {best_kernel_speedup:.2}x"
            ));
        }
        if best_wall_speedup < 0.95 {
            failures.push(format!(
                "threaded train/estimate slower than serial: best speedup {best_wall_speedup:.2}x"
            ));
        }
    }
    // The SIMD gate: on AVX2-capable hosts the explicit-SIMD backend must
    // not lose to the blocked one, judged on the **dense** shapes only —
    // the sparse shapes route both backends through the identical saxpy
    // order (ratio ≈ 1 by construction), so including them would let a
    // dense-tile regression hide behind a sparse-shape ratio. 5% tolerance
    // absorbs runner noise.
    let best_dense_simd_ratio = kernel_rows
        .iter()
        .filter(|r| !r.sparse)
        .map(KernelRow::simd_vs_blocked)
        .fold(f64::NAN, f64::max);
    if simd_active {
        println!(
            "simd backend ({}) vs blocked on dense shapes: best ratio {best_dense_simd_ratio:.2}x",
            KernelBackend::simd_support()
        );
        // NaN (no dense shape measured) must fail too.
        if best_dense_simd_ratio.is_nan() || best_dense_simd_ratio < 0.95 {
            failures.push(format!(
                "simd backend slower than blocked on an AVX2-capable host: \
                 best dense-shape ratio {best_dense_simd_ratio:.2}x"
            ));
        }
    } else {
        println!(
            "simd backend: no AVX2 on this host — dispatch fell back to blocked (gate skipped)"
        );
    }
    let two_x = best_wall_speedup >= 2.0 || best_kernel_speedup >= 2.0;
    println!(
        "\nbest kernel speedup {best_kernel_speedup:.2}x, best wall-clock speedup {best_wall_speedup:.2}x — ≥2x target {} ({} threads)",
        if two_x { "MET" } else { "not met on this machine" },
        threads,
    );

    // ── BENCH_kernels.json ───────────────────────────────────────────────
    let out_path =
        std::env::var("CARDEST_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    let json = render_json(
        &scale,
        threads,
        &kernel_rows,
        &[&train_row, &batch_row, &eval_row],
        identity_failures.is_empty(),
        two_x,
        simd_active,
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        failures.push(format!("cannot write {out_path}: {e}"));
    } else {
        println!("wrote {out_path}");
    }

    if identity_failures.is_empty() && failures.is_empty() {
        println!("\nPASS: kernels bit-identical; threading is not a slowdown");
        ExitCode::SUCCESS
    } else {
        for f in identity_failures.iter().chain(&failures) {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Best-of-5 GFLOP/s for `run`, auto-scaling the iteration count so each
/// sample spends a few tens of milliseconds.
fn best_gflops(flops_per_call: f64, mut run: impl FnMut() -> Matrix) -> f64 {
    // Calibrate.
    let t0 = Instant::now();
    run();
    let once = t0.elapsed().as_secs_f64().max(1e-6);
    let iters = ((0.03 / once) as usize).clamp(1, 2000);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            run();
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    flops_per_call / best / 1e9
}

/// Best wall-clock seconds over `reps` runs of `run`.
fn best_seconds(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Bitwise equality of every parameter matrix in two trainers' stores.
fn stores_equal(a: &Trainer, b: &Trainer) -> bool {
    let (sa, sb) = (&a.store, &b.store);
    if sa.len() != sb.len() {
        return false;
    }
    sa.ids()
        .zip(sb.ids())
        .all(|(ia, ib)| sa.name(ia) == sb.name(ib) && bits_equal(sa.value(ia), sb.value(ib)))
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: &Scale,
    threads: usize,
    kernels: &[KernelRow],
    walls: &[&WallClockRow],
    bit_identity_pass: bool,
    two_x_met: bool,
    simd_active: bool,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"scale\": \"{}\",", scale.label());
    let _ = writeln!(s, "  \"hardware_threads\": {threads},");
    let _ = writeln!(
        s,
        "  \"simd_support\": \"{}\",",
        KernelBackend::simd_support()
    );
    let _ = writeln!(s, "  \"simd_active\": {simd_active},");
    let _ = writeln!(
        s,
        "  \"default_backend\": \"{}\",",
        KernelBackend::default_backend().label()
    );
    let _ = writeln!(s, "  \"bit_identity_pass\": {bit_identity_pass},");
    let _ = writeln!(s, "  \"speedup_2x_met\": {two_x_met},");
    let _ = writeln!(s, "  \"kernels\": [");
    for (i, r) in kernels.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"scalar_gflops\": {:.4}, \"blocked_gflops\": {:.4}, \
             \"simd_gflops\": {:.4}, \"simd_vs_blocked\": {:.4}, \
             \"threaded_gflops\": {:.4}, \"threaded_speedup\": {:.4}}}{}",
            r.name,
            r.m,
            r.k,
            r.n,
            r.scalar_gflops,
            r.blocked_gflops,
            r.simd_gflops,
            r.simd_vs_blocked(),
            r.threaded_gflops,
            r.threaded_speedup(),
            if i + 1 < kernels.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"wall_clock\": [");
    for (i, r) in walls.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"serial_s\": {:.6}, \"threaded_s\": {:.6}, \
             \"speedup\": {:.4}}}{}",
            r.name,
            r.serial_s,
            r.threaded_s,
            r.speedup(),
            if i + 1 < walls.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
