//! Table 7: component ablations. For each component C the paper reports
//! `γ_ξ = (ξ(CardNet−C) − ξ(CardNet)) / ξ(CardNet−C)` — the share of the
//! error that the component removes (positive = component helps).
//!
//! Components: feature extraction (replaced by raw/naive encodings),
//! incremental prediction (replaced by direct cumulative regression),
//! the VAE (removed), and dynamic training (λ_Δ term removed).

use cardest_bench::report::evaluate;
use cardest_bench::zoo::{cardnet_config, trainer_options};
use cardest_bench::{Bundle, Scale};
use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::train::train_cardnet;
use cardest_data::metrics::Accuracy;
use cardest_fx::{build_extractor, naive_extractor};

#[derive(Clone, Copy)]
enum Variant {
    Full,
    NoFx,
    NoIncremental,
    NoVae,
    NoDynamic,
}

fn train_variant(
    b: &Bundle,
    scale: &Scale,
    variant: Variant,
    accelerated: bool,
) -> Box<dyn CardinalityEstimator> {
    let fx_seed = scale.seed ^ 0xF0;
    let fx = match variant {
        Variant::NoFx => naive_extractor(&b.dataset, scale.tau_max, fx_seed),
        _ => build_extractor(&b.dataset, scale.tau_max, fx_seed),
    };
    let mut cfg = cardnet_config(fx.dim(), fx.tau_max() + 1, accelerated);
    let mut opts = trainer_options(scale);
    match variant {
        Variant::NoIncremental => cfg = cfg.without_incremental(),
        Variant::NoVae => cfg = cfg.without_vae(),
        Variant::NoDynamic => opts.dynamic = false,
        _ => {}
    }
    let (trainer, _) = train_cardnet(fx.as_ref(), &b.split.train, &b.split.valid, cfg, opts);
    Box::new(CardNetEstimator::from_trainer(fx, trainer))
}

fn gamma(full: f64, ablated: f64) -> f64 {
    if ablated <= 0.0 {
        return 0.0;
    }
    (ablated - full) / ablated
}

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "# exp_table7 (Table 7 ablations), scale = {}",
        scale.label()
    );
    let bundles = Bundle::default_four(&scale);

    println!("\n## Table 7: component ablation γ ratios (positive = component helps)");
    println!(
        "{:<14} {:<10} {:>10} {:>12} {:>8} {:>10}",
        "Dataset", "Variant", "γ_MSE", "γ_MAPE", "γ_q", "(model)"
    );
    for accelerated in [false, true] {
        let model_name = if accelerated { "CardNet-A" } else { "CardNet" };
        for b in &bundles {
            let full = evaluate(
                train_variant(b, &scale, Variant::Full, accelerated).as_ref(),
                &b.split.test,
            );
            let variants: [(&str, Variant); 4] = [
                ("FeatureExt", Variant::NoFx),
                ("Incremental", Variant::NoIncremental),
                ("VAE", Variant::NoVae),
                ("DynTrain", Variant::NoDynamic),
            ];
            for (name, v) in variants {
                // The paper skips the HM feature-extraction cell (identity).
                if matches!(v, Variant::NoFx)
                    && b.dataset.kind == cardest_data::DistanceKind::Hamming
                {
                    continue;
                }
                let ablated: Accuracy = evaluate(
                    train_variant(b, &scale, v, accelerated).as_ref(),
                    &b.split.test,
                );
                println!(
                    "{:<14} {:<10} {:>9.0}% {:>11.0}% {:>7.0}% {:>10}",
                    b.dataset.name,
                    name,
                    100.0 * gamma(full.mse, ablated.mse),
                    100.0 * gamma(full.mape, ablated.mape),
                    100.0 * gamma(full.mean_q_error - 1.0, ablated.mean_q_error - 1.0),
                    model_name,
                );
            }
        }
    }
}
