//! Tables 9 and 10: model sizes (bytes) and training times (seconds) on the
//! four default datasets. (The paper reports MB and hours at 1M+ records;
//! relative ordering is the reproduced shape.)

use cardest_bench::report::{print_header, print_row};
use cardest_bench::zoo::{train_model, ModelKind};
use cardest_bench::{Bundle, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("# exp_table9_10 (Tables 9 & 10), scale = {}", scale.label());
    let bundles = Bundle::default_four(&scale);
    let names: Vec<String> = bundles.iter().map(|b| b.dataset.name.clone()).collect();

    let mut size_rows = Vec::new();
    let mut time_rows = Vec::new();
    for &kind in ModelKind::all() {
        let mut sizes = Vec::new();
        let mut times = Vec::new();
        for b in &bundles {
            let model = train_model(kind, &b.dataset, &b.split.train, &b.split.valid, &scale);
            sizes.push(model.estimator.size_bytes() as f64 / 1024.0);
            times.push(model.train_secs);
        }
        size_rows.push((kind, sizes));
        time_rows.push((kind, times));
        eprintln!("  {:<10} done", kind.label());
    }

    print_header("Table 9: model size (KiB)", &names);
    for (kind, sizes) in &size_rows {
        print_row(kind.label(), sizes);
    }
    print_header("Table 10: training time (s)", &names);
    for (kind, times) in &time_rows {
        print_row(kind.label(), times);
    }

    // Shape check: DNNsτ is the largest deep model, as in the paper.
    let stau = size_rows
        .iter()
        .find(|(k, _)| *k == ModelKind::DlDnnSTau)
        .map(|(_, s)| s.iter().sum::<f64>())
        .expect("row exists");
    let card = size_rows
        .iter()
        .find(|(k, _)| *k == ModelKind::CardNet)
        .map(|(_, s)| s.iter().sum::<f64>())
        .expect("row exists");
    println!(
        "\nDL-DNNsT total {:.0} KiB vs CardNet {:.0} KiB (paper: DNNsτ largest)",
        stau, card
    );
}
