//! Table 6: average estimation time (milliseconds) of every model, plus the
//! time to actually *run* the exact similarity selection (`SimSelect`).

use cardest_bench::report::{avg_estimation_ms, print_header, print_row};
use cardest_bench::zoo::{train_model, ModelKind};
use cardest_bench::{Bundle, Scale};
use cardest_select::build_selector;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    eprintln!("# exp_table6 (Table 6), scale = {}", scale.label());
    let bundles = Bundle::default_suite(&scale);
    let names: Vec<String> = bundles.iter().map(|b| b.dataset.name.clone()).collect();

    // SimSelect row: run the real selection algorithm per test query.
    let mut simselect_row = Vec::new();
    for b in &bundles {
        let selector = build_selector(&b.dataset);
        let mut total = 0.0f64;
        let mut n = 0usize;
        for lq in &b.split.test.queries {
            for &theta in &b.split.test.thresholds {
                let t0 = Instant::now();
                std::hint::black_box(selector.count(&lq.query, theta));
                total += t0.elapsed().as_secs_f64();
                n += 1;
            }
        }
        simselect_row.push(total / n.max(1) as f64 * 1e3);
    }

    let mut rows: Vec<(&str, Vec<f64>)> = vec![("SimSelect", simselect_row)];
    for &kind in ModelKind::all() {
        let mut cells = Vec::new();
        for b in &bundles {
            let model = train_model(kind, &b.dataset, &b.split.train, &b.split.valid, &scale);
            cells.push(avg_estimation_ms(model.estimator.as_ref(), &b.split.test));
        }
        eprintln!("  {:<10} done", kind.label());
        rows.push((kind.label(), cells));
    }

    print_header("Table 6: average estimation time (ms)", &names);
    for (label, cells) in &rows {
        print_row(label, cells);
    }

    // Shape checks the paper reports: CardNet-A faster than CardNet and
    // faster than SimSelect.
    let idx = |label: &str| {
        rows.iter()
            .position(|(l, _)| *l == label)
            .expect("row exists")
    };
    let (card, card_a, sim) = (idx("CardNet"), idx("CardNet-A"), idx("SimSelect"));
    let faster_than_card = rows[card_a]
        .1
        .iter()
        .zip(&rows[card].1)
        .filter(|(a, c)| a < c)
        .count();
    let faster_than_sim = rows[card_a]
        .1
        .iter()
        .zip(&rows[sim].1)
        .filter(|(a, s)| a < s)
        .count();
    println!(
        "\nCardNet-A faster than CardNet on {faster_than_card}/{} datasets; \
         faster than SimSelect on {faster_than_sim}/{}",
        names.len(),
        names.len()
    );
}
