//! `exp_serve`: load generator for the `cardest-serve` subsystem.
//!
//! Three demonstrations, printed as one report:
//!
//! 1. **Throughput/latency sweep** — client counts × batch windows × worker
//!    counts over the same uniform request stream, cache disabled, so every
//!    cell measures pure micro-batched model compute. Multi-worker throughput
//!    must exceed single-worker throughput on the same workload.
//! 2. **Bit-identity** — every estimate served in every cell is compared to
//!    the plain single-thread, unbatched `estimator.estimate(q, θ)` path;
//!    batching and concurrency must not change a single bit.
//! 3. **Monotone cache on a Zipf-skewed stream** — hot queries repeat, so the
//!    `(epoch, fingerprint, τ)` cache and intra-batch coalescing absorb a
//!    large fraction of the model work, with estimates still bit-identical.
//!
//! With `--listen [ADDR]` the binary instead self-hosts a socket ingress
//! ([`NetServer`]) and turns into a protocol-level load generator:
//! open-loop Poisson arrivals over Zipf-skewed keys measure end-to-end
//! latency percentiles against an SLO, and a deliberately overloaded
//! 1-worker server demonstrates bracket-answering load shedding with
//! client-observed counts reconciled against server counters. The socket
//! run writes its report to `BENCH_serve.json` (path overridable via
//! `CARDEST_BENCH_OUT`).
//!
//! Honors `CARDEST_SCALE` (`quick` | `full`) like every other binary.

use cardest_bench::Scale;
use cardest_core::estimator::CardinalityEstimator;
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::zipf::Zipf;
use cardest_data::{Dataset, Record, Workload};
use cardest_fx::build_extractor;
use cardest_obs::Stage;
use cardest_serve::{
    Decoder, ErrorCode, Frame, ModelRegistry, NetClient, NetConfig, NetServer, Request,
    RequestFrame, ServeConfig, Service, StatsSnapshot, WireQuery, WireSource,
};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One request of a prepared stream: record index, θ, and the shared record.
type StreamItem = (usize, f64, Arc<Record>);

fn main() -> ExitCode {
    let scale = Scale::from_env();
    let mut args = std::env::args().skip(1);
    let mut listen: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                listen = Some(args.next().unwrap_or_else(|| "127.0.0.1:0".into()));
            }
            other => {
                eprintln!("unknown argument: {other} (usage: exp_serve [--listen [ADDR]])");
                return ExitCode::FAILURE;
            }
        }
    }
    match listen {
        Some(addr) => socket_mode(&scale, &addr),
        None => in_process_mode(&scale),
    }
}

/// One quickly trained CardNet; serving performance does not care about
/// accuracy, only about the real inference cost of a real model.
fn trained_model(scale: &Scale) -> (Dataset, CardNetEstimator) {
    let ds = hm_imagenet(SynthConfig::new(scale.n_records, scale.seed));
    let fx = build_extractor(&ds, scale.tau_max, 1);
    let split = Workload::sample_from(&ds, 0.10, 10, 3).split(5);
    let cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
    let opts = TrainerOptions {
        epochs: 6,
        vae_epochs: 2,
        ..TrainerOptions::quick()
    };
    let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
    (ds, CardNetEstimator::from_trainer(fx, trainer))
}

fn in_process_mode(scale: &Scale) -> ExitCode {
    let n_requests = if scale.label() == "full" { 6000 } else { 2400 };
    eprintln!(
        "# exp_serve (serving throughput/latency), scale = {}",
        scale.label()
    );

    let (ds, est) = trained_model(scale);

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", est);
    // The single-thread, unbatched reference path: the exact estimator the
    // service wraps, called directly.
    let live = registry.get("default").expect("just published");

    println!(
        "dataset {} ({} records), model {} (monotone: {}), tau_max {}, {} requests/run\n",
        ds.name,
        ds.len(),
        live.estimator.name(),
        live.monotone,
        live.estimator.extractor().tau_max(),
        n_requests,
    );

    let uniform = uniform_stream(&ds, n_requests, scale.seed ^ 0xC11E);
    let zipf = zipf_stream(&ds, n_requests, scale.seed ^ 0x21FF);

    // Lazily-filled reference map: (record idx, θ bits) → unbatched estimate.
    let mut reference: HashMap<(usize, u64), f64> = HashMap::new();
    let mut reference_of = |items: &[StreamItem]| -> Vec<f64> {
        items
            .iter()
            .map(|(idx, theta, rec)| {
                *reference
                    .entry((*idx, theta.to_bits()))
                    .or_insert_with(|| live.estimator.estimate(rec, *theta))
            })
            .collect()
    };
    let uniform_ref = reference_of(&uniform);
    let zipf_ref = reference_of(&zipf);

    // ── 1. Throughput/latency sweep (cache off: pure batched compute) ────
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    let multi = cores.clamp(2, 4);
    println!("({cores} CPUs detected; multi-worker runs use {multi} workers)\n");
    let windows = [
        Duration::ZERO,
        Duration::from_micros(500),
        Duration::from_millis(2),
    ];
    println!("workers  clients  window     kreq/s   p50        p99        mean-batch");
    let mut identical = 0usize;
    let mut compared = 0usize;
    let mut best_single = 0.0f64;
    let mut best_multi = 0.0f64;
    for &workers in &[1usize, multi] {
        for &clients in &[1usize, 4, 16] {
            for &window in &windows {
                let (elapsed, snap, served) = run_stream(
                    &registry,
                    &uniform,
                    ServeConfig {
                        workers,
                        batch_max: 64,
                        batch_window: window,
                        cache_capacity: 0,
                        bound_tolerance: 0.0,
                        cache_curve_points: 0,
                        kernel_threads: 1,
                        kernel_backend: None,
                        ..ServeConfig::default()
                    },
                    clients,
                );
                let kreq_s = uniform.len() as f64 / elapsed.as_secs_f64() / 1e3;
                if workers == 1 {
                    best_single = best_single.max(kreq_s);
                } else {
                    best_multi = best_multi.max(kreq_s);
                }
                compared += served.len();
                identical += served
                    .iter()
                    .zip(&uniform_ref)
                    .filter(|(a, b)| a.to_bits() == b.to_bits())
                    .count();
                println!(
                    "{workers:<8} {clients:<8} {:<10} {kreq_s:<8.1} {:<10} {:<10} {:.1}",
                    format!("{window:?}"),
                    format!("{:?}", snap.latency_quantile(0.50)),
                    format!("{:?}", snap.latency_quantile(0.99)),
                    snap.mean_batch_size(),
                );
            }
        }
    }

    let speedup = best_multi / best_single.max(1e-12);
    let speedup_verdict = if cores == 1 {
        // One CPU cannot run two workers at once; the comparison is noise.
        "SKIP (1 CPU, no parallelism available)"
    } else if best_multi > best_single {
        "PASS"
    } else {
        "FAIL"
    };
    println!(
        "\n(a) multi-worker throughput: best {multi}-worker {best_multi:.1} kreq/s vs \
         best 1-worker {best_single:.1} kreq/s -> {speedup:.2}x [{speedup_verdict}]",
    );
    println!(
        "    bit-identity, batched+concurrent vs single-thread unbatched: {identical}/{compared} [{}]",
        if identical == compared { "PASS" } else { "FAIL" }
    );
    let sweep_identical = identical == compared;

    // ── 2. Zipf-skewed stream through the monotone cache ─────────────────
    let (elapsed, snap, served) = run_stream(
        &registry,
        &zipf,
        ServeConfig {
            workers: multi,
            batch_max: 64,
            batch_window: Duration::from_micros(500),
            cache_capacity: 4096,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            ..ServeConfig::default()
        },
        8.min(n_requests),
    );
    let zipf_identical = served
        .iter()
        .zip(&zipf_ref)
        .filter(|(a, b)| a.to_bits() == b.to_bits())
        .count();
    println!("\nZipf-skewed stream, monotone cache enabled (4096 entries, tolerance 0):");
    println!(
        "    {:.1} kreq/s; exact hits {:.1}%, bound hits {:.1}%, coalesced {:.1}%, computed {:.1}%",
        zipf.len() as f64 / elapsed.as_secs_f64() / 1e3,
        pct(snap.exact_hits, &snap),
        pct(snap.bound_hits, &snap),
        pct(snap.coalesced, &snap),
        pct(snap.computed, &snap),
    );
    let hist = snap
        .batch_histogram_rows()
        .into_iter()
        .map(|(label, count)| format!("{label}:{count}"))
        .collect::<Vec<_>>()
        .join("  ");
    println!("    micro-batch size histogram: {hist}");
    let hit_pass = snap.exact_hits + snap.bound_hits > 0;
    println!(
        "(b) cache hit rate {:.1}% (bound-hit {:.1}%) non-zero: [{}]",
        snap.hit_rate() * 100.0,
        snap.bound_hit_rate() * 100.0,
        if hit_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "    bit-identity on cached stream: {zipf_identical}/{} [{}]",
        zipf.len(),
        if zipf_identical == zipf.len() {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // ── 3. Monotone-bound short-circuit under an error tolerance ─────────
    // At tolerance 0 only degenerate brackets answer, so τ-buckets fill with
    // exact entries and bound hits stay rare. With a 10% tolerance the
    // service may answer from any tight-enough bracket [ĉ(τ₁), ĉ(τ₂)] —
    // bounded-error mode, the trade the monotonicity guarantee makes
    // possible. (Bounds-answered τs are deliberately never cached as exact.)
    let tolerance = 0.10;
    let (_, tol_snap, tol_served) = run_stream(
        &registry,
        &zipf,
        ServeConfig {
            workers: multi,
            batch_max: 64,
            batch_window: Duration::from_micros(500),
            cache_capacity: 4096,
            bound_tolerance: tolerance,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            ..ServeConfig::default()
        },
        8.min(n_requests),
    );
    let max_rel_dev = tol_served
        .iter()
        .zip(&zipf_ref)
        .map(|(served, reference)| (served - reference).abs() / reference.abs().max(1.0))
        .fold(0.0f64, f64::max);
    let bound_pass = tol_snap.bound_hits > 0 && max_rel_dev <= tolerance;
    println!(
        "\nSame stream at bound tolerance {tolerance}: exact hits {:.1}%, \
         bound hits {:.1}%, computed {:.1}%",
        pct(tol_snap.exact_hits, &tol_snap),
        pct(tol_snap.bound_hits, &tol_snap),
        pct(tol_snap.computed, &tol_snap),
    );
    println!(
        "    non-zero bound-hit rate with max relative deviation {:.4} <= {tolerance}: [{}]",
        max_rel_dev,
        if bound_pass { "PASS" } else { "FAIL" }
    );

    // Scheduler noise can flake a throughput comparison on a loaded CI box,
    // so only the deterministic properties gate the exit code.
    if sweep_identical && zipf_identical == zipf.len() && hit_pass && bound_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn pct(part: u64, snap: &StatsSnapshot) -> f64 {
    if snap.answered() == 0 {
        return 0.0;
    }
    part as f64 / snap.answered() as f64 * 100.0
}

/// Uniformly random record indices and thresholds: the worst case for the
/// cache, the baseline for pure compute throughput.
fn uniform_stream(ds: &cardest_data::Dataset, n: usize, seed: u64) -> Vec<StreamItem> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let idx = rng.gen_range(0..ds.len());
            let theta = ds.theta_max * rng.gen::<f64>();
            (idx, theta, Arc::new(ds.records[idx].clone()))
        })
        .collect()
}

/// Zipf(1.2)-skewed record popularity over a hot set, thresholds from a
/// grid — the shape of production optimizer traffic, where a few relations
/// and canonical thresholds dominate. The grid is finer than the τ-bucket
/// count, so distinct θs share buckets (exact hits) *and* fresh τs between
/// cached neighbors occur (bracket probes).
fn zipf_stream(ds: &cardest_data::Dataset, n: usize, seed: u64) -> Vec<StreamItem> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let hot = Zipf::new(200.min(ds.len()), 1.2);
    let grid = 32;
    (0..n)
        .map(|_| {
            let idx = hot.sample(&mut rng);
            let g = rng.gen_range(0..grid);
            let theta = ds.theta_max * (g as f64 + 1.0) / grid as f64;
            (idx, theta, Arc::new(ds.records[idx].clone()))
        })
        .collect()
}

/// Plays `stream` against a fresh service with `clients` submitter threads
/// (each keeping a bounded window of requests in flight), returning wall
/// time, final stats, and the served estimates in stream order.
fn run_stream(
    registry: &Arc<ModelRegistry>,
    stream: &[StreamItem],
    config: ServeConfig,
    clients: usize,
) -> (Duration, StatsSnapshot, Vec<f64>) {
    const IN_FLIGHT_PER_CLIENT: usize = 32;
    let service = Service::start(Arc::clone(registry), config);
    let clients = clients.max(1).min(stream.len().max(1));
    let chunk = stream.len().div_ceil(clients);
    let t0 = Instant::now();
    let mut served = vec![0.0f64; stream.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (slice_start, slice) in (0..clients).map(|c| c * chunk).zip(stream.chunks(chunk)) {
            let client = service.client();
            handles.push((
                slice_start,
                scope.spawn(move || {
                    let mut results = Vec::with_capacity(slice.len());
                    let mut in_flight = std::collections::VecDeque::new();
                    for (_, theta, rec) in slice {
                        in_flight.push_back(client.submit(Request {
                            model: "default".into(),
                            query: Arc::clone(rec),
                            theta: *theta,
                        }));
                        if in_flight.len() >= IN_FLIGHT_PER_CLIENT {
                            let rx = in_flight.pop_front().expect("non-empty");
                            results.push(recv_estimate(rx));
                        }
                    }
                    for rx in in_flight {
                        results.push(recv_estimate(rx));
                    }
                    results
                }),
            ));
        }
        for (slice_start, handle) in handles {
            for (offset, estimate) in handle
                .join()
                .expect("client thread")
                .into_iter()
                .enumerate()
            {
                served[slice_start + offset] = estimate;
            }
        }
    });
    let elapsed = t0.elapsed();
    let snap = service.stats();
    service.shutdown();
    (elapsed, snap, served)
}

fn recv_estimate(
    rx: std::sync::mpsc::Receiver<Result<cardest_serve::Response, cardest_serve::ServeError>>,
) -> f64 {
    rx.recv()
        .expect("service alive")
        .expect("request served")
        .estimate
}

// ───────────────────────── socket loadgen (`--listen`) ─────────────────────

/// End-to-end p99 SLO for the sustained phase. Deliberately generous: the
/// point is catching pathological queueing (seconds), not scheduler jitter
/// on a loaded CI box.
const SLO_US: u64 = 200_000;

/// Per-client tallies from one socket loadgen connection.
#[derive(Default)]
struct ClientOutcome {
    /// Send-to-receive latency per answered request, microseconds.
    latencies_us: Vec<u64>,
    /// Full-fidelity responses whose estimate was bit-identical to the
    /// single-thread, unbatched reference.
    identical: usize,
    /// Full-fidelity responses compared against the reference.
    compared: usize,
    /// Degraded (shed-bracket) responses.
    degraded: usize,
    /// Typed error frames (e.g. `Overloaded`).
    errors: usize,
    /// Wire-level violations: decode failures, out-of-order ids, unexpected
    /// frame kinds, short reads.
    protocol_errors: usize,
}

fn socket_mode(scale: &Scale, addr: &str) -> ExitCode {
    let n_requests = if scale.label() == "full" { 4000 } else { 1200 };
    let clients = 4usize;
    eprintln!(
        "# exp_serve --listen (socket loadgen), scale = {}",
        scale.label()
    );

    let (ds, est) = trained_model(scale);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", est);
    let live = registry.get("default").expect("just published");
    let records: Vec<Arc<Record>> = ds.records.iter().cloned().map(Arc::new).collect();

    // Single-thread, unbatched reference answers for every distinct query in
    // the stream: the socket path must reproduce these bit-for-bit.
    let stream = zipf_stream(&ds, n_requests, scale.seed ^ 0x50C7);
    let mut reference: HashMap<(usize, u64), f64> = HashMap::new();
    for (idx, theta, rec) in &stream {
        reference
            .entry((*idx, theta.to_bits()))
            .or_insert_with(|| live.estimator.estimate(rec, *theta));
    }

    // ── Phase A: sustained open-loop load, run twice — tracing disabled,
    // then the default configuration (tracing on, default sampling) — so the
    // report carries the observability overhead alongside the per-stage
    // latency breakdown the traced run produces. Arrival rate is fixed by
    // the first run's capacity probe so the A/B holds load constant.
    // A single A/B sample is hostage to scheduler noise on a shared box, so
    // a failing overhead comparison is retried (fresh pair, both legs) up to
    // three times; systematic overhead fails all three.
    let (untraced, traced, overhead_pass) = {
        let mut attempt = 0;
        loop {
            attempt += 1;
            let u = match run_sustained(
                &registry, &records, &stream, &reference, scale, addr, clients, false, None,
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let t = match run_sustained(
                &registry,
                &records,
                &stream,
                &reference,
                scale,
                addr,
                clients,
                true,
                Some(u.offered_rps),
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            // Tracing at default sampling must cost <5% of p99, with 1 ms
            // absolute slack: at quick scale the p99 is small enough that
            // scheduler jitter alone can exceed 5% of it.
            let pass = (t.p99_us as f64) <= u.p99_us as f64 * 1.05 + 1_000.0;
            if pass || attempt >= 3 {
                break (u, t, pass);
            }
            println!(
                "noisy tracing A/B sample (p99 {} -> {} us); retrying",
                u.p99_us, t.p99_us
            );
        }
    };

    let identical = untraced.identical + traced.identical;
    let compared = untraced.compared + traced.compared;
    let protocol_errors = untraced.protocol_errors + traced.protocol_errors;
    // The headline numbers come from the traced run: tracing is the default
    // configuration, so that is what production latency looks like.
    let p50_us = traced.p50_us;
    let p99_us = traced.p99_us;
    let shed_rate = (traced.degraded + traced.errors) as f64 / stream.len().max(1) as f64;

    let bit_identity = compared > 0 && identical == compared;
    let slo_pass = p99_us <= SLO_US && untraced.p99_us <= SLO_US;
    let proto_pass = protocol_errors == 0;
    // The captured traces must attribute ≥90% of end-to-end time to stages
    // (substages excluded): the breakdown is only trustworthy if the spans
    // actually cover the path.
    let coverage_pass = traced.trace_coverage >= 0.90;

    println!(
        "sustained untraced: {:.0} req/s achieved, p50 {} us, p99 {} us",
        untraced.throughput_rps, untraced.p50_us, untraced.p99_us
    );
    println!(
        "sustained traced:   {:.0} req/s achieved, p50 {} us, p99 {} us \
         (SLO {SLO_US} us), shed rate {shed_rate:.4}",
        traced.throughput_rps, traced.p50_us, traced.p99_us
    );
    println!(
        "(a) bit-identity over the socket: {identical}/{compared} [{}]",
        if bit_identity { "PASS" } else { "FAIL" }
    );
    println!(
        "(b) p99 <= SLO: [{}]   protocol errors: {protocol_errors} [{}]",
        if slo_pass { "PASS" } else { "FAIL" },
        if proto_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "(d) tracing overhead p99 {} -> {} us [{}]   stage coverage {:.1}% of \
         end-to-end [{}]",
        untraced.p99_us,
        traced.p99_us,
        if overhead_pass { "PASS" } else { "FAIL" },
        traced.trace_coverage * 100.0,
        if coverage_pass { "PASS" } else { "FAIL" }
    );
    print!("    stage p99s:");
    for (name, us) in &traced.stage_p99_us {
        print!(" {name} {us} us,");
    }
    println!();
    let snap = &traced.snap;
    println!(
        "    server counters: {} requests, exact hits {:.1}%, coalesced {:.1}%, computed {:.1}%",
        snap.requests,
        pct(snap.exact_hits, snap),
        pct(snap.coalesced, snap),
        pct(snap.computed, snap),
    );

    // ── Phase B: overload a 1-worker server; sheds answer from brackets ──
    let over = run_overload_phase(&registry, &ds, records, &live.estimator);

    println!(
        "\noverload: {} flood requests -> {} full-fidelity, {} degraded brackets, {} rejected",
        over.flood_total, over.served_full, over.degraded, over.rejected
    );
    println!(
        "(c) shedding observed with valid brackets: [{}]   counters reconcile: [{}]",
        if over.brackets_valid { "PASS" } else { "FAIL" },
        if over.reconcile { "PASS" } else { "FAIL" }
    );

    let gates_pass = bit_identity
        && slo_pass
        && proto_pass
        && overhead_pass
        && coverage_pass
        && over.brackets_valid
        && over.reconcile
        && over.identity
        && over.protocol_errors == 0;

    let sustained = SustainedReport {
        requests: stream.len(),
        clients,
        offered_rps: traced.offered_rps,
        throughput_rps: traced.throughput_rps,
        p50_us,
        p99_us,
        p99_untraced_us: untraced.p99_us,
        tracing_overhead_pass: overhead_pass,
        slo_pass,
        identical,
        compared,
        degraded: traced.degraded,
        shed_rate,
        protocol_errors,
        stage_p99_us: traced.stage_p99_us.clone(),
        trace_coverage: traced.trace_coverage,
        trace_coverage_pass: coverage_pass,
    };
    let json = render_json(
        scale,
        &sustained,
        &over,
        bit_identity,
        proto_pass,
        gates_pass,
    );
    let out = std::env::var("CARDEST_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    match std::fs::write(&out, json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if gates_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Everything one sustained run produces: latency aggregates, comparison
/// tallies, the server's counter snapshot, and (when tracing was on) the
/// per-stage p99 breakdown plus the attributed-time coverage of the
/// captured traces.
struct SustainedRun {
    offered_rps: f64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    identical: usize,
    compared: usize,
    degraded: usize,
    errors: usize,
    protocol_errors: usize,
    snap: StatsSnapshot,
    stage_p99_us: Vec<(&'static str, u64)>,
    trace_coverage: f64,
}

/// One sustained open-loop run against a freshly started service (fresh
/// cache, fresh counters). `offered_override` skips the capacity probe —
/// the traced A/B leg reuses the untraced leg's rate so the comparison
/// holds the arrival process fixed.
#[allow(clippy::too_many_arguments)]
fn run_sustained(
    registry: &Arc<ModelRegistry>,
    records: &[Arc<Record>],
    stream: &[StreamItem],
    reference: &HashMap<(usize, u64), f64>,
    scale: &Scale,
    addr: &str,
    clients: usize,
    tracing: bool,
    offered_override: Option<f64>,
) -> Result<SustainedRun, String> {
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    let workers = cores.clamp(2, 4);
    let service = Service::start(
        Arc::clone(registry),
        ServeConfig {
            workers,
            batch_max: 64,
            batch_window: Duration::from_micros(500),
            cache_capacity: 4096,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            tracing,
            ..ServeConfig::default()
        },
    );
    let server = NetServer::bind(
        addr,
        service,
        records.to_vec(),
        NetConfig {
            queue_limit: 4096,
            ..NetConfig::default()
        },
    )
    .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "listening on {} ({workers} workers, tracing {}); {} requests over {clients} clients",
        server.addr(),
        if tracing { "on" } else { "off" },
        stream.len(),
    );

    // Closed-loop pass over the stream prefix. Two jobs at once: it warms
    // the fresh service (cache, pool threads) identically on every run —
    // without it the second A/B leg would start cold and its tail would
    // measure warmup, not tracing — and on the first leg it doubles as the
    // capacity probe that sets a safe open-loop arrival rate.
    let probe_n = 200.min(stream.len());
    let probe_t0 = Instant::now();
    {
        let mut c = NetClient::connect(server.addr()).expect("probe connect");
        for (i, (idx, theta, _)) in stream[..probe_n].iter().enumerate() {
            c.send(&Frame::Request(RequestFrame {
                request_id: i as u64,
                client_id: 1,
                theta: *theta,
                deadline_us: 0,
                model: String::new(),
                query: WireQuery::Index(*idx as u64),
            }))
            .expect("probe send");
        }
        for _ in 0..probe_n {
            c.recv().expect("probe recv");
        }
    }
    let capacity_rps = probe_n as f64 / probe_t0.elapsed().as_secs_f64();
    let offered_rps = match offered_override {
        Some(rate) => rate,
        None => {
            let offered = (capacity_rps * 0.30).clamp(200.0, 20_000.0);
            println!(
                "capacity probe: {capacity_rps:.0} req/s closed-loop; offering {offered:.0} req/s \
                 (Poisson arrivals, Zipf keys)"
            );
            offered
        }
    };

    let lambda = offered_rps / clients as f64;
    let chunk = stream.len().div_ceil(clients);
    let run_t0 = Instant::now();
    let mut outcomes: Vec<ClientOutcome> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (client, slice) in stream.chunks(chunk).enumerate() {
            let server_addr = server.addr();
            let seed = scale.seed;
            handles.push(scope.spawn(move || {
                run_socket_client(server_addr, client, slice, lambda, reference, seed)
            }));
        }
        for handle in handles {
            outcomes.push(handle.join().expect("loadgen client thread"));
        }
    });
    let run_elapsed = run_t0.elapsed();
    let snap = server.service().stats();

    // Per-stage breakdown and coverage, read from the service's observer
    // before shutdown. Stage histograms see *every* finished trace; the
    // coverage ratio is computed over the sampled ring.
    let obs = Arc::clone(server.service().observer());
    let stage_p99_us: Vec<(&'static str, u64)> = [
        Stage::QueueWait,
        Stage::BatchWindow,
        Stage::Prepare,
        Stage::CacheProbe,
        Stage::Model,
    ]
    .iter()
    .map(|&s| (s.name(), obs.stage_histogram(s).quantile_ns(0.99) / 1_000))
    .collect();
    let traces = obs.recent_traces(usize::MAX);
    let attributed: u64 = traces.iter().map(|t| t.attributed_ns()).sum();
    let total: u64 = traces.iter().map(|t| t.total_ns).sum();
    let trace_coverage = if total == 0 {
        0.0
    } else {
        attributed as f64 / total as f64
    };
    server.shutdown();

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    Ok(SustainedRun {
        offered_rps,
        throughput_rps: latencies.len() as f64 / run_elapsed.as_secs_f64(),
        p50_us: quantile_us(&latencies, 0.50),
        p99_us: quantile_us(&latencies, 0.99),
        identical: outcomes.iter().map(|o| o.identical).sum(),
        compared: outcomes.iter().map(|o| o.compared).sum(),
        degraded: outcomes.iter().map(|o| o.degraded).sum(),
        errors: outcomes.iter().map(|o| o.errors).sum(),
        protocol_errors: outcomes.iter().map(|o| o.protocol_errors).sum(),
        snap,
        stage_p99_us,
        trace_coverage,
    })
}

/// One loadgen connection: a paced sender and a concurrent receiver over the
/// same socket. Responses are FIFO per connection, so the receiver pairs
/// each frame with the matching send timestamp (and expected answer) by
/// position.
fn run_socket_client(
    addr: std::net::SocketAddr,
    client: usize,
    slice: &[StreamItem],
    lambda: f64,
    reference: &HashMap<(usize, u64), f64>,
    seed: u64,
) -> ClientOutcome {
    use std::io::{Read, Write};
    let writer = std::net::TcpStream::connect(addr).expect("loadgen connect");
    writer.set_nodelay(true).ok();
    let mut reader = writer.try_clone().expect("clone socket");
    let mut writer = writer;
    // capacity: unbounded send-stamp queue; the sender pushes one Instant
    // per request and the reader pops one per response, so depth is bounded
    // by the in-flight window of this closed-loop client (≤ slice.len()).
    let (sent_tx, sent_rx) = std::sync::mpsc::channel::<Instant>();
    let expected = slice.len();

    let mut outcome = ClientOutcome::default();
    std::thread::scope(|scope| {
        let recv = scope.spawn(move || {
            let mut out = ClientOutcome::default();
            let mut dec = Decoder::new();
            let mut buf = [0u8; 16384];
            let mut got = 0usize;
            'read: while got < expected {
                let n = match reader.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                dec.extend(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(frame)) => {
                            let sent = sent_rx.recv().expect("sender timestamps every frame");
                            out.latencies_us.push(sent.elapsed().as_micros() as u64);
                            let (idx, theta, _) = &slice[got];
                            match frame {
                                Frame::Response(r) => {
                                    if r.request_id != got as u64 {
                                        out.protocol_errors += 1;
                                    } else if r.degraded {
                                        out.degraded += 1;
                                    } else {
                                        out.compared += 1;
                                        let want = reference[&(*idx, theta.to_bits())];
                                        if r.estimate.to_bits() == want.to_bits() {
                                            out.identical += 1;
                                        }
                                    }
                                }
                                Frame::Error(_) => out.errors += 1,
                                _ => out.protocol_errors += 1,
                            }
                            got += 1;
                            if got == expected {
                                break 'read;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            out.protocol_errors += 1;
                            break 'read;
                        }
                    }
                }
            }
            // Unanswered requests are protocol failures too: the server owes
            // exactly one frame per request.
            out.protocol_errors += expected - got;
            out
        });

        // Open-loop Poisson sender: arrival times are drawn up front from
        // the schedule, never from service feedback — a slow server makes
        // the queue grow instead of slowing the offered load.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA551_0000 ^ (client as u64) << 8);
        let mut due = Instant::now();
        for (i, (idx, theta, rec)) in slice.iter().enumerate() {
            let gap = -(1.0 - rng.gen::<f64>()).ln() / lambda;
            due += Duration::from_secs_f64(gap);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            // Mostly index queries; every 7th ships the record inline to
            // keep the `Bits` wire path hot under load as well.
            let query = if i % 7 == 3 {
                WireQuery::Bits(rec.as_bits().clone())
            } else {
                WireQuery::Index(*idx as u64)
            };
            let frame = Frame::Request(RequestFrame {
                request_id: i as u64,
                client_id: 10 + client as u64,
                theta: *theta,
                deadline_us: 0,
                model: String::new(),
                query,
            });
            let stamp = Instant::now();
            if writer.write_all(&frame.encode()).is_err() {
                break;
            }
            if sent_tx.send(stamp).is_err() {
                break;
            }
        }
        drop(sent_tx);
        outcome = recv.join().expect("receiver thread");
    });
    outcome
}

/// Results of the overload phase.
struct OverloadReport {
    flood_total: usize,
    served_full: usize,
    degraded: usize,
    rejected: usize,
    protocol_errors: usize,
    /// Sheds happened, every degraded answer was a `ShedBracket` whose
    /// `[lo, hi]` is bit-identical to the independently computed bracket.
    brackets_valid: bool,
    /// Client-observed degraded/rejected counts equal the server's
    /// `shed_bracket`/`shed_rejected` counters.
    reconcile: bool,
    /// Every full-fidelity answer (admitted during overload or served after
    /// the flood drained) was bit-identical to the reference.
    identity: bool,
    shed_rate: f64,
}

/// Saturate a 1-worker server behind a `queue_limit = 8` ingress: fill the
/// queue with cold queries while the worker stalls in a long batch window,
/// then flood. Cold overflow must be rejected `Overloaded`; hot overflow
/// must be answered degraded from the pre-warmed monotone bracket.
fn run_overload_phase(
    registry: &Arc<ModelRegistry>,
    ds: &Dataset,
    records: Vec<Arc<Record>>,
    reference: &CardNetEstimator,
) -> OverloadReport {
    const ADMIT: usize = 8; // == queue_limit: exactly fills the bounded queue
    const COLD_SHED: usize = 8;
    const HOT_SHED: usize = 40;
    let flood_total = ADMIT + COLD_SHED + HOT_SHED;

    let hot = ds.len() - 1;
    let tau_max = reference.extractor().tau_max();
    let theta_of = |tau: usize| ds.theta_max * (tau as f64 + 0.5) / tau_max as f64;
    let (theta_lo, theta_mid, theta_hi) =
        (theta_of(1), theta_of(tau_max / 2), theta_of(tau_max - 1));
    let expected_lo = reference.estimate(&ds.records[hot], theta_lo);
    let expected_hi = reference.estimate(&ds.records[hot], theta_hi);

    let service = Service::start(
        Arc::clone(registry),
        ServeConfig {
            workers: 1,
            batch_max: 64,
            // Long window: the worker stalls collecting its batch, so the
            // flood lands against a full queue deterministically.
            batch_window: Duration::from_millis(400),
            cache_capacity: 1024,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            ..ServeConfig::default()
        },
    );
    let over = NetServer::bind(
        "127.0.0.1:0",
        service,
        records,
        NetConfig {
            queue_limit: ADMIT,
            ..NetConfig::default()
        },
    )
    .expect("bind overload server");

    let mut report = OverloadReport {
        flood_total,
        served_full: 0,
        degraded: 0,
        rejected: 0,
        protocol_errors: 0,
        brackets_valid: false,
        reconcile: false,
        identity: true,
        shed_rate: 0.0,
    };

    // Pre-warm the hot record's bracket endpoints (one pipelined batch).
    {
        let mut c = NetClient::connect(over.addr()).expect("prewarm connect");
        for (i, theta) in [theta_lo, theta_hi].into_iter().enumerate() {
            c.send(&Frame::Request(RequestFrame {
                request_id: i as u64,
                client_id: 1,
                theta,
                deadline_us: 0,
                model: String::new(),
                query: WireQuery::Index(hot as u64),
            }))
            .expect("prewarm send");
        }
        for _ in 0..2 {
            match c.recv() {
                Ok(Frame::Response(r)) if !r.degraded => {}
                other => {
                    eprintln!("prewarm failed: {other:?}");
                    report.protocol_errors += 1;
                }
            }
        }
    }

    // The flood, pipelined on one connection: ADMIT cold queries fill the
    // queue, COLD_SHED more cold queries overflow it (no cached bracket →
    // rejected), HOT_SHED hot queries overflow it (bracket → degraded).
    let flood_idx = |i: usize| -> usize {
        if i < ADMIT + COLD_SHED {
            i % hot // distinct cold records, never the hot one
        } else {
            hot
        }
    };
    let mut bad_bracket = 0usize;
    {
        let mut c = NetClient::connect(over.addr()).expect("flood connect");
        for i in 0..flood_total {
            c.send(&Frame::Request(RequestFrame {
                request_id: i as u64,
                client_id: 42,
                theta: theta_mid,
                deadline_us: 0,
                model: String::new(),
                query: WireQuery::Index(flood_idx(i) as u64),
            }))
            .expect("flood send");
        }
        for i in 0..flood_total {
            match c.recv() {
                Ok(Frame::Response(r)) => {
                    if r.degraded {
                        report.degraded += 1;
                        let ok = r.source == WireSource::ShedBracket
                            && r.lo.to_bits() == expected_lo.to_bits()
                            && r.hi.to_bits() == expected_hi.to_bits()
                            && r.lo <= r.estimate
                            && r.estimate <= r.hi;
                        if !ok {
                            bad_bracket += 1;
                        }
                    } else {
                        report.served_full += 1;
                        let idx = flood_idx(r.request_id as usize);
                        let want = reference.estimate(&ds.records[idx], theta_mid);
                        if r.estimate.to_bits() != want.to_bits() {
                            report.identity = false;
                        }
                    }
                }
                Ok(Frame::Error(e)) if e.code == ErrorCode::Overloaded => report.rejected += 1,
                Ok(other) => {
                    eprintln!("flood: unexpected frame {other:?}");
                    report.protocol_errors += 1;
                }
                Err(e) => {
                    eprintln!("flood: connection died: {e}");
                    report.protocol_errors += flood_total - i;
                    break;
                }
            }
        }
    }

    // After the flood drains, the same hot query must be served at full
    // fidelity again — shedding is a mode, not a latch.
    {
        let mut c = NetClient::connect(over.addr()).expect("drain connect");
        match c.call(RequestFrame {
            request_id: 99,
            client_id: 1,
            theta: theta_mid,
            deadline_us: 0,
            model: String::new(),
            query: WireQuery::Index(hot as u64),
        }) {
            Ok(Frame::Response(r)) if !r.degraded => {
                let want = reference.estimate(&ds.records[hot], theta_mid);
                if r.estimate.to_bits() != want.to_bits() {
                    report.identity = false;
                }
            }
            other => {
                eprintln!("post-drain request failed: {other:?}");
                report.protocol_errors += 1;
            }
        }
    }

    let snap = over.service().stats();
    over.shutdown();
    report.brackets_valid = report.degraded > 0 && bad_bracket == 0;
    report.reconcile = snap.shed_bracket == report.degraded as u64
        && snap.shed_rejected == report.rejected as u64
        && report.rejected > 0;
    report.shed_rate = (report.degraded + report.rejected) as f64 / flood_total as f64;
    report
}

fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let pos = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[pos.min(sorted.len() - 1)]
}

/// Sustained-phase numbers destined for the JSON report. `p99_us` is the
/// traced (default-config) run; `p99_untraced_us` the tracing-disabled A/B
/// leg at the same offered rate.
struct SustainedReport {
    requests: usize,
    clients: usize,
    offered_rps: f64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    p99_untraced_us: u64,
    tracing_overhead_pass: bool,
    slo_pass: bool,
    identical: usize,
    compared: usize,
    degraded: usize,
    shed_rate: f64,
    protocol_errors: usize,
    stage_p99_us: Vec<(&'static str, u64)>,
    trace_coverage: f64,
    trace_coverage_pass: bool,
}

fn render_json(
    scale: &Scale,
    sustained: &SustainedReport,
    over: &OverloadReport,
    bit_identity: bool,
    proto_pass: bool,
    gates_pass: bool,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"serve_socket\",");
    let _ = writeln!(s, "  \"scale\": \"{}\",", scale.label());
    let _ = writeln!(s, "  \"slo_us\": {SLO_US},");
    let _ = writeln!(s, "  \"sustained\": {{");
    let _ = writeln!(s, "    \"requests\": {},", sustained.requests);
    let _ = writeln!(s, "    \"clients\": {},", sustained.clients);
    let _ = writeln!(s, "    \"offered_rps\": {:.1},", sustained.offered_rps);
    let _ = writeln!(
        s,
        "    \"throughput_rps\": {:.1},",
        sustained.throughput_rps
    );
    let _ = writeln!(s, "    \"p50_us\": {},", sustained.p50_us);
    let _ = writeln!(s, "    \"p99_us\": {},", sustained.p99_us);
    let _ = writeln!(s, "    \"p99_us_untraced\": {},", sustained.p99_untraced_us);
    let _ = writeln!(
        s,
        "    \"tracing_overhead_pass\": {},",
        sustained.tracing_overhead_pass
    );
    let _ = writeln!(s, "    \"slo_pass\": {},", sustained.slo_pass);
    let _ = writeln!(s, "    \"bit_identical\": {},", sustained.identical);
    let _ = writeln!(s, "    \"compared\": {},", sustained.compared);
    let _ = writeln!(s, "    \"degraded\": {},", sustained.degraded);
    let _ = writeln!(s, "    \"shed_rate\": {:.6},", sustained.shed_rate);
    let _ = writeln!(s, "    \"protocol_errors\": {},", sustained.protocol_errors);
    let _ = writeln!(s, "    \"stage_p99_us\": {{");
    for (i, (name, us)) in sustained.stage_p99_us.iter().enumerate() {
        let comma = if i + 1 < sustained.stage_p99_us.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(s, "      \"{name}\": {us}{comma}");
    }
    let _ = writeln!(s, "    }},");
    let _ = writeln!(
        s,
        "    \"trace_coverage\": {:.4},",
        sustained.trace_coverage
    );
    let _ = writeln!(
        s,
        "    \"trace_coverage_pass\": {}",
        sustained.trace_coverage_pass
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"overload\": {{");
    let _ = writeln!(s, "    \"requests\": {},", over.flood_total);
    let _ = writeln!(s, "    \"served_full\": {},", over.served_full);
    let _ = writeln!(s, "    \"degraded\": {},", over.degraded);
    let _ = writeln!(s, "    \"rejected\": {},", over.rejected);
    let _ = writeln!(s, "    \"shed_rate\": {:.6},", over.shed_rate);
    let _ = writeln!(s, "    \"brackets_valid\": {},", over.brackets_valid);
    let _ = writeln!(s, "    \"counters_reconcile\": {},", over.reconcile);
    let _ = writeln!(s, "    \"protocol_errors\": {}", over.protocol_errors);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"gates\": {{");
    let _ = writeln!(s, "    \"bit_identity\": {bit_identity},");
    let _ = writeln!(s, "    \"zero_protocol_errors\": {proto_pass},");
    let _ = writeln!(s, "    \"slo\": {},", sustained.slo_pass);
    let _ = writeln!(
        s,
        "    \"tracing_overhead\": {},",
        sustained.tracing_overhead_pass
    );
    let _ = writeln!(
        s,
        "    \"trace_coverage\": {},",
        sustained.trace_coverage_pass
    );
    let _ = writeln!(s, "    \"shedding_observed\": {},", over.brackets_valid);
    let _ = writeln!(s, "    \"counters_reconcile\": {},", over.reconcile);
    let _ = writeln!(s, "    \"all\": {gates_pass}");
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}
