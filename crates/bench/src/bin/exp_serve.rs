//! `exp_serve`: load generator for the `cardest-serve` subsystem.
//!
//! Three demonstrations, printed as one report:
//!
//! 1. **Throughput/latency sweep** — client counts × batch windows × worker
//!    counts over the same uniform request stream, cache disabled, so every
//!    cell measures pure micro-batched model compute. Multi-worker throughput
//!    must exceed single-worker throughput on the same workload.
//! 2. **Bit-identity** — every estimate served in every cell is compared to
//!    the plain single-thread, unbatched `estimator.estimate(q, θ)` path;
//!    batching and concurrency must not change a single bit.
//! 3. **Monotone cache on a Zipf-skewed stream** — hot queries repeat, so the
//!    `(epoch, fingerprint, τ)` cache and intra-batch coalescing absorb a
//!    large fraction of the model work, with estimates still bit-identical.
//!
//! Honors `CARDEST_SCALE` (`quick` | `full`) like every other binary.

use cardest_bench::Scale;
use cardest_core::estimator::CardinalityEstimator;
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::zipf::Zipf;
use cardest_data::{Record, Workload};
use cardest_fx::build_extractor;
use cardest_serve::{ModelRegistry, Request, ServeConfig, Service, StatsSnapshot};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One request of a prepared stream: record index, θ, and the shared record.
type StreamItem = (usize, f64, Arc<Record>);

fn main() -> ExitCode {
    let scale = Scale::from_env();
    let n_requests = if scale.label() == "full" { 6000 } else { 2400 };
    eprintln!(
        "# exp_serve (serving throughput/latency), scale = {}",
        scale.label()
    );

    // One quickly trained CardNet; serving performance does not care about
    // accuracy, only about the real inference cost of a real model.
    let ds = hm_imagenet(SynthConfig::new(scale.n_records, scale.seed));
    let fx = build_extractor(&ds, scale.tau_max, 1);
    let split = Workload::sample_from(&ds, 0.10, 10, 3).split(5);
    let cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
    let opts = TrainerOptions {
        epochs: 6,
        vae_epochs: 2,
        ..TrainerOptions::quick()
    };
    let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
    let est = CardNetEstimator::from_trainer(fx, trainer);

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", est);
    // The single-thread, unbatched reference path: the exact estimator the
    // service wraps, called directly.
    let live = registry.get("default").expect("just published");

    println!(
        "dataset {} ({} records), model {} (monotone: {}), tau_max {}, {} requests/run\n",
        ds.name,
        ds.len(),
        live.estimator.name(),
        live.monotone,
        live.estimator.extractor().tau_max(),
        n_requests,
    );

    let uniform = uniform_stream(&ds, n_requests, scale.seed ^ 0xC11E);
    let zipf = zipf_stream(&ds, n_requests, scale.seed ^ 0x21FF);

    // Lazily-filled reference map: (record idx, θ bits) → unbatched estimate.
    let mut reference: HashMap<(usize, u64), f64> = HashMap::new();
    let mut reference_of = |items: &[StreamItem]| -> Vec<f64> {
        items
            .iter()
            .map(|(idx, theta, rec)| {
                *reference
                    .entry((*idx, theta.to_bits()))
                    .or_insert_with(|| live.estimator.estimate(rec, *theta))
            })
            .collect()
    };
    let uniform_ref = reference_of(&uniform);
    let zipf_ref = reference_of(&zipf);

    // ── 1. Throughput/latency sweep (cache off: pure batched compute) ────
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    let multi = cores.clamp(2, 4);
    println!("({cores} CPUs detected; multi-worker runs use {multi} workers)\n");
    let windows = [
        Duration::ZERO,
        Duration::from_micros(500),
        Duration::from_millis(2),
    ];
    println!("workers  clients  window     kreq/s   p50        p99        mean-batch");
    let mut identical = 0usize;
    let mut compared = 0usize;
    let mut best_single = 0.0f64;
    let mut best_multi = 0.0f64;
    for &workers in &[1usize, multi] {
        for &clients in &[1usize, 4, 16] {
            for &window in &windows {
                let (elapsed, snap, served) = run_stream(
                    &registry,
                    &uniform,
                    ServeConfig {
                        workers,
                        batch_max: 64,
                        batch_window: window,
                        cache_capacity: 0,
                        bound_tolerance: 0.0,
                        cache_curve_points: 0,
                        kernel_threads: 1,
                        kernel_backend: None,
                    },
                    clients,
                );
                let kreq_s = uniform.len() as f64 / elapsed.as_secs_f64() / 1e3;
                if workers == 1 {
                    best_single = best_single.max(kreq_s);
                } else {
                    best_multi = best_multi.max(kreq_s);
                }
                compared += served.len();
                identical += served
                    .iter()
                    .zip(&uniform_ref)
                    .filter(|(a, b)| a.to_bits() == b.to_bits())
                    .count();
                println!(
                    "{workers:<8} {clients:<8} {:<10} {kreq_s:<8.1} {:<10} {:<10} {:.1}",
                    format!("{window:?}"),
                    format!("{:?}", snap.latency_quantile(0.50)),
                    format!("{:?}", snap.latency_quantile(0.99)),
                    snap.mean_batch_size(),
                );
            }
        }
    }

    let speedup = best_multi / best_single.max(1e-12);
    let speedup_verdict = if cores == 1 {
        // One CPU cannot run two workers at once; the comparison is noise.
        "SKIP (1 CPU, no parallelism available)"
    } else if best_multi > best_single {
        "PASS"
    } else {
        "FAIL"
    };
    println!(
        "\n(a) multi-worker throughput: best {multi}-worker {best_multi:.1} kreq/s vs \
         best 1-worker {best_single:.1} kreq/s -> {speedup:.2}x [{speedup_verdict}]",
    );
    println!(
        "    bit-identity, batched+concurrent vs single-thread unbatched: {identical}/{compared} [{}]",
        if identical == compared { "PASS" } else { "FAIL" }
    );
    let sweep_identical = identical == compared;

    // ── 2. Zipf-skewed stream through the monotone cache ─────────────────
    let (elapsed, snap, served) = run_stream(
        &registry,
        &zipf,
        ServeConfig {
            workers: multi,
            batch_max: 64,
            batch_window: Duration::from_micros(500),
            cache_capacity: 4096,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
        },
        8.min(n_requests),
    );
    let zipf_identical = served
        .iter()
        .zip(&zipf_ref)
        .filter(|(a, b)| a.to_bits() == b.to_bits())
        .count();
    println!("\nZipf-skewed stream, monotone cache enabled (4096 entries, tolerance 0):");
    println!(
        "    {:.1} kreq/s; exact hits {:.1}%, bound hits {:.1}%, coalesced {:.1}%, computed {:.1}%",
        zipf.len() as f64 / elapsed.as_secs_f64() / 1e3,
        pct(snap.exact_hits, &snap),
        pct(snap.bound_hits, &snap),
        pct(snap.coalesced, &snap),
        pct(snap.computed, &snap),
    );
    let hist = snap
        .batch_histogram_rows()
        .into_iter()
        .map(|(label, count)| format!("{label}:{count}"))
        .collect::<Vec<_>>()
        .join("  ");
    println!("    micro-batch size histogram: {hist}");
    let hit_pass = snap.exact_hits + snap.bound_hits > 0;
    println!(
        "(b) cache hit rate {:.1}% (bound-hit {:.1}%) non-zero: [{}]",
        snap.hit_rate() * 100.0,
        snap.bound_hit_rate() * 100.0,
        if hit_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "    bit-identity on cached stream: {zipf_identical}/{} [{}]",
        zipf.len(),
        if zipf_identical == zipf.len() {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // ── 3. Monotone-bound short-circuit under an error tolerance ─────────
    // At tolerance 0 only degenerate brackets answer, so τ-buckets fill with
    // exact entries and bound hits stay rare. With a 10% tolerance the
    // service may answer from any tight-enough bracket [ĉ(τ₁), ĉ(τ₂)] —
    // bounded-error mode, the trade the monotonicity guarantee makes
    // possible. (Bounds-answered τs are deliberately never cached as exact.)
    let tolerance = 0.10;
    let (_, tol_snap, tol_served) = run_stream(
        &registry,
        &zipf,
        ServeConfig {
            workers: multi,
            batch_max: 64,
            batch_window: Duration::from_micros(500),
            cache_capacity: 4096,
            bound_tolerance: tolerance,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
        },
        8.min(n_requests),
    );
    let max_rel_dev = tol_served
        .iter()
        .zip(&zipf_ref)
        .map(|(served, reference)| (served - reference).abs() / reference.abs().max(1.0))
        .fold(0.0f64, f64::max);
    let bound_pass = tol_snap.bound_hits > 0 && max_rel_dev <= tolerance;
    println!(
        "\nSame stream at bound tolerance {tolerance}: exact hits {:.1}%, \
         bound hits {:.1}%, computed {:.1}%",
        pct(tol_snap.exact_hits, &tol_snap),
        pct(tol_snap.bound_hits, &tol_snap),
        pct(tol_snap.computed, &tol_snap),
    );
    println!(
        "    non-zero bound-hit rate with max relative deviation {:.4} <= {tolerance}: [{}]",
        max_rel_dev,
        if bound_pass { "PASS" } else { "FAIL" }
    );

    // Scheduler noise can flake a throughput comparison on a loaded CI box,
    // so only the deterministic properties gate the exit code.
    if sweep_identical && zipf_identical == zipf.len() && hit_pass && bound_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn pct(part: u64, snap: &StatsSnapshot) -> f64 {
    if snap.answered() == 0 {
        return 0.0;
    }
    part as f64 / snap.answered() as f64 * 100.0
}

/// Uniformly random record indices and thresholds: the worst case for the
/// cache, the baseline for pure compute throughput.
fn uniform_stream(ds: &cardest_data::Dataset, n: usize, seed: u64) -> Vec<StreamItem> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let idx = rng.gen_range(0..ds.len());
            let theta = ds.theta_max * rng.gen::<f64>();
            (idx, theta, Arc::new(ds.records[idx].clone()))
        })
        .collect()
}

/// Zipf(1.2)-skewed record popularity over a hot set, thresholds from a
/// grid — the shape of production optimizer traffic, where a few relations
/// and canonical thresholds dominate. The grid is finer than the τ-bucket
/// count, so distinct θs share buckets (exact hits) *and* fresh τs between
/// cached neighbors occur (bracket probes).
fn zipf_stream(ds: &cardest_data::Dataset, n: usize, seed: u64) -> Vec<StreamItem> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let hot = Zipf::new(200.min(ds.len()), 1.2);
    let grid = 32;
    (0..n)
        .map(|_| {
            let idx = hot.sample(&mut rng);
            let g = rng.gen_range(0..grid);
            let theta = ds.theta_max * (g as f64 + 1.0) / grid as f64;
            (idx, theta, Arc::new(ds.records[idx].clone()))
        })
        .collect()
}

/// Plays `stream` against a fresh service with `clients` submitter threads
/// (each keeping a bounded window of requests in flight), returning wall
/// time, final stats, and the served estimates in stream order.
fn run_stream(
    registry: &Arc<ModelRegistry>,
    stream: &[StreamItem],
    config: ServeConfig,
    clients: usize,
) -> (Duration, StatsSnapshot, Vec<f64>) {
    const IN_FLIGHT_PER_CLIENT: usize = 32;
    let service = Service::start(Arc::clone(registry), config);
    let clients = clients.max(1).min(stream.len().max(1));
    let chunk = stream.len().div_ceil(clients);
    let t0 = Instant::now();
    let mut served = vec![0.0f64; stream.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (slice_start, slice) in (0..clients).map(|c| c * chunk).zip(stream.chunks(chunk)) {
            let client = service.client();
            handles.push((
                slice_start,
                scope.spawn(move || {
                    let mut results = Vec::with_capacity(slice.len());
                    let mut in_flight = std::collections::VecDeque::new();
                    for (_, theta, rec) in slice {
                        in_flight.push_back(client.submit(Request {
                            model: "default".into(),
                            query: Arc::clone(rec),
                            theta: *theta,
                        }));
                        if in_flight.len() >= IN_FLIGHT_PER_CLIENT {
                            let rx = in_flight.pop_front().expect("non-empty");
                            results.push(recv_estimate(rx));
                        }
                    }
                    for rx in in_flight {
                        results.push(recv_estimate(rx));
                    }
                    results
                }),
            ));
        }
        for (slice_start, handle) in handles {
            for (offset, estimate) in handle
                .join()
                .expect("client thread")
                .into_iter()
                .enumerate()
            {
                served[slice_start + offset] = estimate;
            }
        }
    });
    let elapsed = t0.elapsed();
    let snap = service.stats();
    service.shutdown();
    (elapsed, snap, served)
}

fn recv_estimate(
    rx: std::sync::mpsc::Receiver<Result<cardest_serve::Response, cardest_serve::ServeError>>,
) -> f64 {
    rx.recv()
        .expect("service alive")
        .expect("request served")
        .estimate
}
