//! Experiment harness shared by the per-table/figure binaries.
//!
//! Every binary honors `CARDEST_SCALE`:
//! * `quick` (default) — datasets of ~1.5k records, short training schedules;
//!   the whole suite finishes in minutes on one CPU.
//! * `full` — larger corpora and longer schedules, closer to the paper's
//!   relative gaps (still laptop-scale; the originals used 1M+ records).
//!
//! The harness provides the *model zoo* (train any §9.1.2 estimator on any
//! dataset), the accuracy/timing evaluators, and plain-text table printing
//! shaped like the paper's artifacts.

pub mod report;
pub mod zoo;

use cardest_data::{Dataset, Workload, WorkloadSplit};

/// Experiment scale knobs.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub n_records: usize,
    /// Fraction of the dataset sampled as the query workload (paper: 10%).
    pub workload_frac: f64,
    /// Threshold-grid resolution.
    pub n_thresholds: usize,
    /// Deep-model epochs.
    pub epochs: usize,
    pub vae_epochs: usize,
    /// GBT boosting rounds.
    pub gbt_trees: usize,
    /// τ_max given to feature extraction (decoder-count ceiling).
    pub tau_max: usize,
    pub seed: u64,
}

impl Scale {
    pub fn quick() -> Self {
        Scale {
            n_records: 1500,
            workload_frac: 0.12,
            n_thresholds: 12,
            epochs: 56,
            vae_epochs: 10,
            gbt_trees: 20,
            tau_max: 16,
            seed: 0xBEEF,
        }
    }

    pub fn full() -> Self {
        Scale {
            n_records: 6000,
            workload_frac: 0.10,
            n_thresholds: 16,
            epochs: 120,
            vae_epochs: 25,
            gbt_trees: 32,
            tau_max: 20,
            seed: 0xBEEF,
        }
    }

    /// Reads `CARDEST_SCALE` (`quick` | `full`), defaulting to quick.
    pub fn from_env() -> Self {
        match std::env::var("CARDEST_SCALE").as_deref() {
            Ok("full") => Scale::full(),
            _ => Scale::quick(),
        }
    }

    pub fn label(&self) -> &'static str {
        if self.n_records >= Scale::full().n_records {
            "full"
        } else {
            "quick"
        }
    }
}

/// A dataset plus its labelled, split workload — the unit every experiment
/// consumes.
pub struct Bundle {
    pub dataset: Dataset,
    pub split: WorkloadSplit,
}

impl Bundle {
    /// Samples, labels, and splits the workload per §6.1.
    pub fn prepare(dataset: Dataset, scale: &Scale) -> Bundle {
        let wl = Workload::sample_from(
            &dataset,
            scale.workload_frac,
            scale.n_thresholds,
            scale.seed ^ 0x51A7,
        );
        let split = wl.split(scale.seed ^ 0x0F00);
        Bundle { dataset, split }
    }

    /// The paper's eight Table 2 stand-ins.
    pub fn default_suite(scale: &Scale) -> Vec<Bundle> {
        cardest_data::synth::default_suite(scale.n_records, scale.seed)
            .into_iter()
            .map(|ds| Bundle::prepare(ds, scale))
            .collect()
    }

    /// The four boldface "default" datasets.
    pub fn default_four(scale: &Scale) -> Vec<Bundle> {
        cardest_data::synth::default_four(scale.n_records, scale.seed)
            .into_iter()
            .map(|ds| Bundle::prepare(ds, scale))
            .collect()
    }
}
