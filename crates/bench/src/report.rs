//! Accuracy/timing evaluation and paper-shaped table printing.

use cardest_core::CardinalityEstimator;
use cardest_data::metrics::Accuracy;
use cardest_data::Workload;
use std::time::Instant;

/// Evaluates an estimator over a test workload: one `(query, θ)` pair per
/// grid cell, like the paper's test protocol. Each query is `prepare`d once
/// and swept across the threshold grid through the prepared-query API —
/// feature extraction and encoding happen once per query, not once per grid
/// cell — with values bit-identical to per-cell `estimate` calls.
pub fn evaluate(est: &dyn CardinalityEstimator, test: &Workload) -> Accuracy {
    evaluate_par(est, test, 1)
}

/// [`evaluate`] with the per-query work fanned out across up to `threads`
/// scoped workers. Queries are independent (`prepare` + a threshold sweep
/// each), and per-chunk results are spliced back in workload order, so the
/// `Accuracy` is computed over the identical value sequence — bit-identical
/// to the serial path for any thread count.
pub fn evaluate_par(est: &dyn CardinalityEstimator, test: &Workload, threads: usize) -> Accuracy {
    let n_queries = test.queries.len();
    let threads = threads.max(1).min(n_queries.max(1));
    let cells = |queries: &[cardest_data::workload::LabelledQuery]| {
        let mut actual = Vec::with_capacity(queries.len() * test.thresholds.len());
        let mut predicted = Vec::with_capacity(queries.len() * test.thresholds.len());
        for lq in queries {
            let prepared = est.prepare(&lq.query);
            for (&theta, &c) in test.thresholds.iter().zip(&lq.cards) {
                actual.push(f64::from(c));
                predicted.push(est.estimate_prepared(&prepared, theta).max(0.0));
            }
        }
        (actual, predicted)
    };
    if threads <= 1 {
        let (actual, predicted) = cells(&test.queries);
        return Accuracy::compute(&actual, &predicted);
    }
    let chunk = n_queries.div_ceil(threads);
    let parts: Vec<(Vec<f64>, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = test
            .queries
            .chunks(chunk)
            .map(|queries| s.spawn(|| cells(queries)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluation worker panicked"))
            .collect()
    });
    let mut actual = Vec::with_capacity(n_queries * test.thresholds.len());
    let mut predicted = Vec::with_capacity(n_queries * test.thresholds.len());
    for (a, p) in parts {
        actual.extend(a);
        predicted.extend(p);
    }
    Accuracy::compute(&actual, &predicted)
}

/// Evaluates only at one fixed threshold (the per-threshold sweeps of
/// Figure 5). `grid_index` selects the threshold from the grid.
pub fn evaluate_at(est: &dyn CardinalityEstimator, test: &Workload, grid_index: usize) -> Accuracy {
    let theta = test.thresholds[grid_index];
    let mut actual = Vec::new();
    let mut predicted = Vec::new();
    for lq in &test.queries {
        actual.push(f64::from(lq.cards[grid_index]));
        predicted.push(est.estimate(&lq.query, theta).max(0.0));
    }
    Accuracy::compute(&actual, &predicted)
}

/// Per-query actual/estimated pairs at the maximum threshold — the input for
/// the long-tail (Figure 9) and generalizability (Figure 10) groupings.
pub fn per_query_pairs(est: &dyn CardinalityEstimator, test: &Workload) -> (Vec<f64>, Vec<f64>) {
    let last = test.thresholds.len() - 1;
    let theta = test.thresholds[last];
    let mut actual = Vec::with_capacity(test.len());
    let mut predicted = Vec::with_capacity(test.len());
    for lq in &test.queries {
        actual.push(f64::from(lq.cards[last]));
        predicted.push(est.estimate(&lq.query, theta).max(0.0));
    }
    (actual, predicted)
}

/// Average per-query estimation latency in milliseconds (Table 6 protocol:
/// one query at a time, in memory).
pub fn avg_estimation_ms(est: &dyn CardinalityEstimator, test: &Workload) -> f64 {
    let mut total = 0.0f64;
    let mut n = 0usize;
    for lq in &test.queries {
        for &theta in &test.thresholds {
            let t0 = Instant::now();
            std::hint::black_box(est.estimate(&lq.query, theta));
            total += t0.elapsed().as_secs_f64();
            n += 1;
        }
    }
    total / n.max(1) as f64 * 1e3
}

/// Prints a table header: `Model` + one column per dataset.
pub fn print_header(title: &str, datasets: &[String]) {
    println!("\n## {title}");
    print!("{:<12}", "Model");
    for d in datasets {
        print!(" {d:>14}");
    }
    println!();
    println!("{}", "-".repeat(12 + 15 * datasets.len()));
}

/// Prints one row of numeric cells.
pub fn print_row(model: &str, cells: &[f64]) {
    print!("{model:<12}");
    for &c in cells {
        print!(" {:>14}", format_cell(c));
    }
    println!();
}

/// Compact numeric formatting: integers below 10⁶, scientific above,
/// 2–3 significant decimals below 100.
pub fn format_cell(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1e6 {
        format!("{v:.2e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_data::{Dataset, Record};

    struct Oracle<'a>(&'a Dataset);
    impl CardinalityEstimator for Oracle<'_> {
        fn estimate(&self, q: &Record, theta: f64) -> f64 {
            self.0.cardinality_scan(q, theta) as f64
        }
        fn name(&self) -> String {
            "Exact".into()
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn oracle_evaluates_perfectly() {
        let ds = hm_imagenet(SynthConfig::new(120, 3));
        let wl = Workload::sample_from(&ds, 0.2, 6, 1);
        let acc = evaluate(&Oracle(&ds), &wl);
        assert_eq!(acc.mse, 0.0);
        assert_eq!(acc.mean_q_error, 1.0);
        let acc1 = evaluate_at(&Oracle(&ds), &wl, 3);
        assert_eq!(acc1.mse, 0.0);
    }

    #[test]
    fn formatting_covers_ranges() {
        assert_eq!(format_cell(0.0), "0");
        assert_eq!(format_cell(4.63391), "4.63");
        assert_eq!(format_cell(1234.0), "1234");
        assert!(format_cell(2.5e7).contains('e'));
        assert_eq!(format_cell(0.0314), "0.0314");
        assert_eq!(format_cell(f64::NAN), "-");
    }

    #[test]
    fn timing_is_positive() {
        let ds = hm_imagenet(SynthConfig::new(60, 4));
        let wl = Workload::sample_from(&ds, 0.2, 4, 2);
        let ms = avg_estimation_ms(&Oracle(&ds), &wl);
        assert!(ms > 0.0);
    }
}
