//! Integration-test crate: the test sources live in the workspace-level
//! `/tests` directory and are registered as `[[test]]` targets in this
//! crate's manifest, so `cargo test --workspace` exercises the cross-crate
//! flows (end-to-end training, monotonicity guarantees, oracle agreement,
//! optimizer correctness, persistence).
//!
//! The crate itself exports nothing.
