//! Property test: [`cardest_serve::ServiceStats`] latency quantiles are
//! thread-safe — many threads hammering `record_latency` concurrently
//! produce *exactly* the histogram that serial recording produces (the
//! buckets are relaxed atomic counters; interleaving must not lose or
//! misfile a sample), and the quantiles read off that histogram land within
//! one log2 bucket of the true order statistic.

use cardest_serve::ServiceStats;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The log2 bucket a latency of `ns` lands in, capped to the histogram
/// width — the same `[2^b, 2^{b+1})` convention `ServiceStats` uses.
fn bucket_of(ns: u64, n_buckets: usize) -> usize {
    if ns == 0 {
        return 0;
    }
    (63 - ns.leading_zeros() as usize).min(n_buckets - 1)
}

/// True order statistic under the histogram's rank rule:
/// rank = max(1, ceil(q·n)).
fn true_quantile_ns(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_latency_recording_matches_serial_and_brackets_truth(
        latencies in prop::collection::vec(1u64..2_000_000_000, 8..400),
        threads in 2usize..5,
    ) {
        // Serial reference: one thread, same samples, same order.
        let serial = ServiceStats::new();
        for &ns in &latencies {
            serial.record_latency(Duration::from_nanos(ns));
        }
        let serial_snap = serial.snapshot();

        // Concurrent run: samples partitioned round-robin over threads.
        let concurrent = Arc::new(ServiceStats::new());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let stats = Arc::clone(&concurrent);
                let mine: Vec<u64> = latencies
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect();
                scope.spawn(move || {
                    for ns in mine {
                        stats.record_latency(Duration::from_nanos(ns));
                    }
                });
            }
        });
        let conc_snap = concurrent.snapshot();

        // Exactness: no sample lost, none misfiled, whatever the schedule.
        prop_assert_eq!(&conc_snap.latency_hist, &serial_snap.latency_hist);

        // Quantiles agree with the serial read exactly (same histogram, same
        // deterministic walk)...
        let mut sorted = latencies.clone();
        sorted.sort_unstable();
        let n_buckets = conc_snap.latency_hist.len();
        for &q in &[0.50, 0.99] {
            let conc_q = conc_snap.latency_quantile(q).as_nanos() as u64;
            let serial_q = serial_snap.latency_quantile(q).as_nanos() as u64;
            prop_assert_eq!(conc_q, serial_q, "q={}", q);
            // ...and land within one bucket of the true order statistic
            // (the histogram's resolution bound).
            let got_bucket = bucket_of(conc_q, n_buckets) as i64;
            let want_bucket = bucket_of(true_quantile_ns(&sorted, q), n_buckets) as i64;
            prop_assert!(
                (got_bucket - want_bucket).abs() <= 1,
                "q={}: reported bucket {} vs true bucket {}",
                q,
                got_bucket,
                want_bucket
            );
        }
    }
}
