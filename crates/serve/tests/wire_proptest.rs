//! Property tests for the wire codec (`cardest_serve::wire`).
//!
//! Two contracts a network-facing codec must hold unconditionally:
//!
//! 1. **Round-trip**: `decode(encode(f)) == f` for *every* representable
//!    frame — floats by bit pattern (NaN included), empty strings, empty
//!    and multi-word bit vectors.
//! 2. **Totality**: the decoder never panics, whatever bytes arrive and in
//!    whatever chunk sizes — hostile input maps to typed `WireError`s.
//!
//! Plus the property that makes round-trips exact: encoding is
//! **canonical**, so any payload the decoder accepts re-encodes to the
//! identical bytes.

use cardest_data::BitVec;
use cardest_serve::wire::{decode_payload, MAX_PAYLOAD};
use cardest_serve::{
    Decoder, ErrorCode, ErrorFrame, Frame, RequestFrame, ResponseFrame, StatsFrame, TracesFrame,
    WireQuery, WireSource, WireTrace, MAX_TRACE_STAGES,
};
use proptest::prelude::*;

fn source_of(tag: u8) -> WireSource {
    match tag % 5 {
        0 => WireSource::Computed,
        1 => WireSource::Coalesced,
        2 => WireSource::CacheExact,
        3 => WireSource::CacheBounds,
        _ => WireSource::ShedBracket,
    }
}

fn code_of(tag: u8) -> ErrorCode {
    match tag % 8 {
        0 => ErrorCode::Malformed,
        1 => ErrorCode::UnknownModel,
        2 => ErrorCode::BadQuery,
        3 => ErrorCode::Overloaded,
        4 => ErrorCode::QuotaExceeded,
        5 => ErrorCode::ShuttingDown,
        6 => ErrorCode::DeadlineExceeded,
        _ => ErrorCode::ConnLimit,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Requests round-trip bit-exactly: θ as an arbitrary f64 bit pattern
    /// (NaN included), query either an index or an inline bit vector of
    /// arbitrary width (word-boundary widths included via 0..200).
    #[test]
    fn request_frames_round_trip(
        request_id in any::<u64>(),
        client_id in any::<u64>(),
        theta_bits in any::<u64>(),
        deadline_us in any::<u32>(),
        model in "[a-z0-9_]{0,12}",
        by_index in any::<bool>(),
        index in any::<u64>(),
        bits in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let query = if by_index {
            WireQuery::Index(index)
        } else {
            WireQuery::Bits(BitVec::from_bits(bits.iter().copied()))
        };
        let frame = Frame::Request(RequestFrame {
            request_id,
            client_id,
            theta: f64::from_bits(theta_bits),
            deadline_us,
            model,
            query,
        });
        let bytes = frame.encode();
        prop_assert!(bytes.len() <= 4 + MAX_PAYLOAD);
        let back = decode_payload(&bytes[4..]).expect("own encoding decodes");
        prop_assert_eq!(&back, &frame);
        // Canonical: the accepted payload re-encodes to identical bytes.
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Responses and errors round-trip, including every source/code tag and
    /// the degraded flag in both states.
    #[test]
    fn response_and_error_frames_round_trip(
        request_id in any::<u64>(),
        epoch in any::<u64>(),
        estimate_bits in any::<u64>(),
        lo_bits in any::<u64>(),
        hi_bits in any::<u64>(),
        source_tag in any::<u8>(),
        batch in any::<u32>(),
        degraded in any::<bool>(),
        code_tag in any::<u8>(),
        message in "[ -~]{0,40}",
        token in any::<u64>(),
    ) {
        let frames = [
            Frame::Response(ResponseFrame {
                request_id,
                epoch,
                estimate: f64::from_bits(estimate_bits),
                lo: f64::from_bits(lo_bits),
                hi: f64::from_bits(hi_bits),
                source: source_of(source_tag),
                batch,
                degraded,
            }),
            Frame::Error(ErrorFrame {
                request_id,
                code: code_of(code_tag),
                message,
            }),
            Frame::Ping(token),
            Frame::Pong(token),
        ];
        for frame in frames {
            let bytes = frame.encode();
            let back = decode_payload(&bytes[4..]).expect("own encoding decodes");
            prop_assert_eq!(&back, &frame);
            prop_assert_eq!(back.encode(), bytes);
        }
    }

    /// The introspection kinds round-trip too: stats entries with arbitrary
    /// names/values, traces with any stage count up to the wire cap.
    #[test]
    fn stats_and_trace_frames_round_trip(
        token in any::<u64>(),
        max in any::<u32>(),
        names in prop::collection::vec("[ -~]{0,20}", 0..8),
        values in prop::collection::vec(any::<u64>(), 0..8),
        trace_words in prop::collection::vec(any::<u64>(), 0..64),
        stage_counts in prop::collection::vec(any::<u8>(), 0..4),
    ) {
        let counters: Vec<(String, u64)> = names
            .iter()
            .cloned()
            .zip(values.iter().copied())
            .collect();
        // Traces assembled from a flat word pool: each generated count picks
        // `count % (cap+1)` stage values, then id/epoch/total off the pool.
        let mut pool = trace_words.iter().copied();
        let traces: Vec<WireTrace> = stage_counts
            .iter()
            .map(|&count| {
                let k = (count as usize) % (MAX_TRACE_STAGES + 1);
                let stages_ns: Vec<u64> = (0..k).map(|_| pool.next().unwrap_or(0)).collect();
                WireTrace {
                    id: pool.next().unwrap_or(1),
                    epoch: pool.next().unwrap_or(2),
                    total_ns: pool.next().unwrap_or(3),
                    source: count,
                    stages_ns,
                }
            })
            .collect();
        let frames = [
            Frame::StatsRequest(token),
            Frame::Stats(StatsFrame { token, counters }),
            Frame::TraceRequest { token, max },
            Frame::Traces(TracesFrame { token, traces }),
        ];
        for frame in frames {
            let bytes = frame.encode();
            prop_assert!(bytes.len() <= 4 + MAX_PAYLOAD);
            let back = decode_payload(&bytes[4..]).expect("own encoding decodes");
            prop_assert_eq!(&back, &frame);
            prop_assert_eq!(back.encode(), bytes);
        }
    }

    /// The incremental decoder is total: arbitrary bytes, fed in arbitrary
    /// chunk sizes, produce frames or typed errors — never a panic. On the
    /// first error the stream is unrecoverable and callers close the
    /// connection, so the drain stops there (mirroring the server).
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let mut offsets: Vec<usize> = cuts.iter().map(|c| c.index(bytes.len().max(1))).collect();
        offsets.push(0);
        offsets.push(bytes.len());
        offsets.sort_unstable();
        let mut dec = Decoder::new();
        'feed: for pair in offsets.windows(2) {
            dec.extend(&bytes[pair[0]..pair[1]]);
            // Drain everything decodable right now; errors are data, not
            // panics.
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => break 'feed,
                }
            }
            // `mid_frame`/`buffered` must also stay total.
            let _ = dec.mid_frame();
            let _ = dec.buffered();
        }
    }

    /// A single corrupted byte in a valid frame either still decodes (the
    /// byte was value-bearing) — in which case the result re-encodes
    /// canonically — or raises a typed error. Never a panic, never an
    /// accepted-but-noncanonical payload.
    #[test]
    fn bitflips_decode_canonically_or_error(
        theta_bits in any::<u64>(),
        bits in prop::collection::vec(any::<bool>(), 1..100),
        flip_at in any::<prop::sample::Index>(),
        flip_mask in 1u8..=255,
    ) {
        let frame = Frame::Request(RequestFrame {
            request_id: 7,
            client_id: 1,
            theta: f64::from_bits(theta_bits),
            deadline_us: 250,
            model: "default".into(),
            query: WireQuery::Bits(BitVec::from_bits(bits.iter().copied())),
        });
        let mut bytes = frame.encode();
        // Corrupt one payload byte (leave the length prefix alone so the
        // frame still frames).
        let at = 4 + flip_at.index(bytes.len() - 4);
        bytes[at] ^= flip_mask;
        // A typed rejection is equally fine; only acceptance has to be
        // canonical.
        if let Ok(decoded) = decode_payload(&bytes[4..]) {
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }

    /// Same single-byte-corruption property for the introspection kinds
    /// (their count fields are the interesting corruption targets: a flipped
    /// entry count must reject, not mis-frame).
    #[test]
    fn bitflips_on_stats_frames_decode_canonically_or_error(
        token in any::<u64>(),
        names in prop::collection::vec("[a-z_]{1,16}", 1..6),
        values in prop::collection::vec(any::<u64>(), 1..6),
        flip_at in any::<prop::sample::Index>(),
        flip_mask in 1u8..=255,
    ) {
        let counters: Vec<(String, u64)> = names
            .iter()
            .cloned()
            .zip(values.iter().copied())
            .collect();
        let frame = Frame::Stats(StatsFrame { token, counters });
        let mut bytes = frame.encode();
        let at = 4 + flip_at.index(bytes.len() - 4);
        bytes[at] ^= flip_mask;
        if let Ok(decoded) = decode_payload(&bytes[4..]) {
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }
}
