//! Keeps the runtime lock witness and the static lock-order analysis from
//! drifting apart: re-runs `cardest-lint`'s cross-file lock-graph pass over
//! this workspace and checks the witness's rank table against it.
//!
//! Two invariants:
//!
//! 1. **Coverage** — every lock the lint discovers appears in
//!    [`cardest_serve::lockwitness::LOCK_RANKS`], and vice versa. Adding a
//!    mutex anywhere in the workspace without assigning it a rank fails
//!    here, as does keeping a rank for a lock that no longer exists.
//! 2. **Consistency** — every edge in the lint's acquisition graph goes
//!    from a lower rank to a higher rank, so code the lint proves
//!    acyclic can never trip the runtime witness (and the witness's
//!    order is a valid topological order of the static graph).
//!
//! The witness-hook tests below additionally exercise the `cardest-obs`
//! callback bridge: once [`lockwitness::install_obs_witness`] runs, the
//! observer's trace-ring and slow-log locks participate in the same
//! thread-local rank stack as the serve-owned locks.

use cardest_lint::{run, Config};
use cardest_obs::{ObsConfig, Observer};
use cardest_serve::lockwitness::{self, TrackedLock, LOCK_RANKS};
use std::collections::HashMap;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    // crates/serve -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn rank_table_matches_the_lint_lock_graph() {
    let report = run(&Config::workspace(&workspace_root())).expect("lint runs");
    let graph = &report.lock_graph;
    assert!(
        !graph.locks.is_empty(),
        "the lint should discover the workspace's locks"
    );
    assert!(
        graph.cycles.is_empty(),
        "the static lock graph must be cycle-free: {:?}",
        graph.cycles
    );

    let ranks: HashMap<&str, u16> = LOCK_RANKS.iter().copied().collect();

    // Coverage, both directions.
    for lock in &graph.locks {
        assert!(
            ranks.contains_key(lock.id.as_str()),
            "lock `{}` ({}:{}) has no rank in lockwitness::LOCK_RANKS — \
             assign it one so the runtime witness can track it",
            lock.id,
            lock.file,
            lock.line,
        );
    }
    for (id, _) in LOCK_RANKS {
        assert!(
            graph.locks.iter().any(|l| l.id == *id),
            "LOCK_RANKS names `{id}` but the lint no longer finds that lock — \
             remove the stale rank",
        );
    }

    // Every statically observed nesting must agree with the rank order.
    for edge in &graph.edges {
        let from = ranks[edge.from.as_str()];
        let to = ranks[edge.to.as_str()];
        assert!(
            from < to,
            "edge `{}` -> `{}` at {}:{} (in `{}`) contradicts LOCK_RANKS \
             ({from} !< {to}); reorder the ranks or the acquisitions",
            edge.from,
            edge.to,
            edge.file,
            edge.line,
            edge.func,
        );
    }
}

#[test]
fn obs_locks_report_through_the_witness_hook() {
    lockwitness::install_obs_witness();
    let obs = Observer::new(ObsConfig::default());
    // Nothing held: the ring/slow acquisitions inside these calls pass the
    // rank check and the release callback pops them cleanly.
    let _ = obs.recent_traces(4);
    let _ = obs.slow_traces(4);
    // Ascending interleave: a serve-owned rank (4) below the obs ranks (5/6).
    let _stats = lockwitness::acquire(TrackedLock::StatsClients);
    let _ = obs.recent_traces(4);
    let _ = obs.slow_traces(4);
}

#[test]
#[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
fn observer_lock_under_a_higher_rank_panics_in_debug() {
    lockwitness::install_obs_witness();
    // Pretend this thread holds the slow-query log (rank 6), then touch the
    // trace ring (rank 5): the hook must veto the inversion before the
    // `.lock()` happens. Release builds install no hook, so passing without
    // a panic is exactly the claim being verified there.
    let _slow = lockwitness::acquire(TrackedLock::ObsSlow);
    let obs = Observer::new(ObsConfig::default());
    let _ = obs.recent_traces(4);
}
