//! Keeps the runtime lock witness and the static lock-order analysis from
//! drifting apart: re-runs `cardest-lint`'s cross-file lock-graph pass over
//! this workspace and checks the witness's rank table against it.
//!
//! Two invariants:
//!
//! 1. **Coverage** — every lock the lint discovers appears in
//!    [`cardest_serve::lockwitness::LOCK_RANKS`], and vice versa. Adding a
//!    mutex anywhere in the workspace without assigning it a rank fails
//!    here, as does keeping a rank for a lock that no longer exists.
//! 2. **Consistency** — every edge in the lint's acquisition graph goes
//!    from a lower rank to a higher rank, so code the lint proves
//!    acyclic can never trip the runtime witness (and the witness's
//!    order is a valid topological order of the static graph).

use cardest_lint::{run, Config};
use cardest_serve::lockwitness::LOCK_RANKS;
use std::collections::HashMap;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    // crates/serve -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn rank_table_matches_the_lint_lock_graph() {
    let report = run(&Config::workspace(&workspace_root())).expect("lint runs");
    let graph = &report.lock_graph;
    assert!(
        !graph.locks.is_empty(),
        "the lint should discover the workspace's locks"
    );
    assert!(
        graph.cycles.is_empty(),
        "the static lock graph must be cycle-free: {:?}",
        graph.cycles
    );

    let ranks: HashMap<&str, u16> = LOCK_RANKS.iter().copied().collect();

    // Coverage, both directions.
    for lock in &graph.locks {
        assert!(
            ranks.contains_key(lock.id.as_str()),
            "lock `{}` ({}:{}) has no rank in lockwitness::LOCK_RANKS — \
             assign it one so the runtime witness can track it",
            lock.id,
            lock.file,
            lock.line,
        );
    }
    for (id, _) in LOCK_RANKS {
        assert!(
            graph.locks.iter().any(|l| l.id == *id),
            "LOCK_RANKS names `{id}` but the lint no longer finds that lock — \
             remove the stale rank",
        );
    }

    // Every statically observed nesting must agree with the rank order.
    for edge in &graph.edges {
        let from = ranks[edge.from.as_str()];
        let to = ranks[edge.to.as_str()];
        assert!(
            from < to,
            "edge `{}` -> `{}` at {}:{} (in `{}`) contradicts LOCK_RANKS \
             ({from} !< {to}); reorder the ranks or the acquisitions",
            edge.from,
            edge.to,
            edge.file,
            edge.line,
            edge.func,
        );
    }
}
