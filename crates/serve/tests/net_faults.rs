//! Fault injection against the socket ingress: hostile or broken clients —
//! truncated frames, oversized length prefixes, garbage headers, mid-request
//! disconnects, slow-loris writers — must fail **per connection**, with a
//! typed error frame where one can still be delivered, and must never poison
//! the worker pool: a well-behaved client on the same server keeps getting
//! bit-identical answers throughout.

use cardest_core::estimator::CardinalityEstimator;
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::{Dataset, Record, Workload};
use cardest_fx::build_extractor;
use cardest_serve::wire::MAX_PAYLOAD;
use cardest_serve::{
    ErrorCode, Frame, ModelRegistry, NetClient, NetConfig, NetServer, RequestFrame, ResponseFrame,
    ServeConfig, Service, WireQuery,
};
use std::io::Write;
use std::net::Shutdown;
use std::sync::Arc;
use std::time::Duration;

/// Same tiny-model recipe as the serve crate's internal fixtures: accuracy
/// is irrelevant, determinism is what the assertions use.
fn tiny_setup(seed: u64) -> (Dataset, CardNetEstimator) {
    let ds = hm_imagenet(SynthConfig::new(120, seed));
    let fx = build_extractor(&ds, 8, 1);
    let split = Workload::sample_from(&ds, 0.3, 6, 2).split(3);
    let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
    cfg.phi_hidden = vec![16];
    cfg.z_dim = 8;
    cfg = cfg.without_vae();
    let opts = TrainerOptions {
        epochs: 2,
        vae_epochs: 0,
        ..TrainerOptions::quick()
    };
    let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
    (ds, CardNetEstimator::from_trainer(fx, trainer))
}

fn start_server(net_cfg: NetConfig) -> (NetServer, Dataset, Vec<f64>) {
    let (ds, est) = tiny_setup(61);
    // Reference answers for the probe queries a well-behaved client sends
    // between fault injections.
    let reference: Vec<f64> = (0..8)
        .map(|i| est.estimate(&ds.records[i * 3], 5.0))
        .collect();
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", est);
    let service = Service::start(registry, ServeConfig::default());
    let records: Vec<Arc<Record>> = ds.records.iter().cloned().map(Arc::new).collect();
    let server = NetServer::bind("127.0.0.1:0", service, records, net_cfg).expect("bind loopback");
    (server, ds, reference)
}

fn probe(server: &NetServer, reference: &[f64], i: usize) {
    let mut client = NetClient::connect(server.addr()).expect("connect");
    let resp = client
        .call(RequestFrame {
            request_id: 1,
            client_id: 0,
            theta: 5.0,
            deadline_us: 0,
            model: String::new(),
            query: WireQuery::Index((i * 3) as u64),
        })
        .expect("healthy server answers");
    match resp {
        Frame::Response(ResponseFrame { estimate, .. }) => assert_eq!(
            estimate.to_bits(),
            reference[i].to_bits(),
            "worker pool degraded after a fault injection"
        ),
        other => panic!("expected a response, got {other:?}"),
    }
}

fn expect_malformed_then_close(client: &mut NetClient) {
    match client.recv().expect("error frame before close") {
        Frame::Error(e) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    assert!(
        client.recv().is_err(),
        "connection must close after a framing fault"
    );
}

#[test]
fn framing_faults_poison_only_their_own_connection() {
    let (server, _ds, reference) = start_server(NetConfig {
        frame_timeout: Duration::from_millis(250),
        ..NetConfig::default()
    });
    probe(&server, &reference, 0);

    // 1. Oversized length prefix: rejected before any buffering.
    {
        let mut c = NetClient::connect(server.addr()).expect("connect");
        let huge = (MAX_PAYLOAD as u32 + 1).to_le_bytes();
        c.stream().write_all(&huge).expect("send prefix");
        expect_malformed_then_close(&mut c);
    }
    probe(&server, &reference, 1);

    // 2. Garbage header: plausible length, nonsense bytes.
    {
        let mut c = NetClient::connect(server.addr()).expect("connect");
        let mut bytes = 8u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0xAA; 8]);
        c.stream().write_all(&bytes).expect("send garbage");
        expect_malformed_then_close(&mut c);
    }
    probe(&server, &reference, 2);

    // 3. Truncated frame: a valid frame cut short, then a clean disconnect.
    //    No error frame is owed (the bytes could still have been on their
    //    way); the connection just ends without tying up anything.
    {
        let mut c = NetClient::connect(server.addr()).expect("connect");
        let full = Frame::Ping(1).encode();
        c.stream()
            .write_all(&full[..full.len() - 2])
            .expect("send partial");
        c.stream()
            .shutdown(Shutdown::Both)
            .expect("disconnect mid-frame");
    }
    probe(&server, &reference, 3);

    // 4. Slow loris: a frame that starts and then stalls must be timed out
    //    and answered with a typed error.
    {
        let mut c = NetClient::connect(server.addr()).expect("connect");
        let full = Frame::Ping(2).encode();
        c.stream().write_all(&full[..3]).expect("send trickle");
        // Stall past frame_timeout (250ms) without completing the frame.
        expect_malformed_then_close(&mut c);
    }
    probe(&server, &reference, 4);

    // 5. Protocol-role violation: a client sending server-side frame kinds.
    {
        let mut c = NetClient::connect(server.addr()).expect("connect");
        c.send(&Frame::Pong(3)).expect("send wrong-role frame");
        expect_malformed_then_close(&mut c);
    }
    probe(&server, &reference, 5);

    server.shutdown();
}

/// Regression for the decode-path hardening: no byte sequence handed to the
/// payload decoder may panic. Before the `Body` cursor went fully checked, a
/// frame whose *inner* length field (e.g. a model-name `str8`) overran the
/// declared payload would slice out of bounds and take the reader thread —
/// and its connection slot — down with it.
#[test]
fn no_payload_mutation_panics_the_decoder() {
    use cardest_serve::wire::decode_payload;

    let corpus: Vec<Frame> = vec![
        Frame::Request(RequestFrame {
            request_id: 7,
            client_id: 3,
            theta: 5.0,
            deadline_us: 1_000,
            model: "default".into(),
            query: WireQuery::Index(12),
        }),
        Frame::Ping(11),
        Frame::Pong(12),
        Frame::StatsRequest(13),
        Frame::TraceRequest { token: 14, max: 4 },
    ];
    let mut lcg = 0x2545_F491_4F6C_DD1Du64;
    for frame in &corpus {
        let encoded = frame.encode();
        // Strip the length prefix: the decoder sees the payload bytes.
        let body = &encoded[4..];
        // Every truncation point.
        for cut in 0..body.len() {
            let _ = decode_payload(&body[..cut]);
        }
        // Every single-bit flip at every offset, plus a whole-byte flip. This
        // sweeps the kind byte through foreign kinds, so each kind's decoder
        // also sees the *other* kinds' bodies as garbage input.
        for i in 0..body.len() {
            for mask in [1u8, 2, 4, 8, 16, 32, 64, 128, 0xFF] {
                let mut mutant = body.to_vec();
                mutant[i] ^= mask;
                let _ = decode_payload(&mutant);
            }
        }
        // Deterministic garbage of assorted lengths.
        for len in [0usize, 1, 3, 4, 7, 16, 64, 257] {
            let noise: Vec<u8> = (0..len)
                .map(|_| {
                    lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (lcg >> 33) as u8
                })
                .collect();
            let _ = decode_payload(&noise);
        }
    }
}

/// The same class of fault, end to end: a frame whose outer length is honest
/// but whose inner string length points past the end of the body must get a
/// typed `Malformed` reply — not a panicked reader — and the worker pool
/// keeps serving bit-identical answers afterwards.
#[test]
fn inner_length_overrun_cannot_panic_a_reader_thread() {
    let (server, _ds, reference) = start_server(NetConfig::default());
    probe(&server, &reference, 0);

    let valid = Frame::Request(RequestFrame {
        request_id: 21,
        client_id: 0,
        theta: 5.0,
        deadline_us: 0,
        model: "default".into(),
        query: WireQuery::Index(0),
    })
    .encode();
    // Layout after the 4-byte length prefix: magic, version, kind, flags,
    // request_id:u64, client_id:u32, theta:u64, deadline:u64, model-len:u8.
    let model_len_at = 4 + 4 + 8 + 4 + 8 + 8;

    // a) Inner string length claims 255 bytes the body does not contain.
    {
        let mut mutant = valid.clone();
        mutant[model_len_at] = 0xFF;
        let mut c = NetClient::connect(server.addr()).expect("connect");
        c.stream().write_all(&mutant).expect("send overrun");
        expect_malformed_then_close(&mut c);
    }
    probe(&server, &reference, 1);

    // b) Honest prefix, body chopped mid-integer: redeclare the outer length
    //    so the decoder (not the framer) sees the truncation.
    {
        let short = valid.len() - 6;
        let mut mutant = ((short - 4) as u32).to_le_bytes().to_vec();
        mutant.extend_from_slice(&valid[4..short]);
        let mut c = NetClient::connect(server.addr()).expect("connect");
        c.stream().write_all(&mutant).expect("send chopped");
        expect_malformed_then_close(&mut c);
    }
    probe(&server, &reference, 2);

    server.shutdown();
}

#[test]
fn idle_connections_are_closed_and_release_their_slot() {
    let (server, _ds, reference) = start_server(NetConfig {
        max_connections: 1,
        idle_timeout: Some(Duration::from_millis(200)),
        ..NetConfig::default()
    });
    // An idle connect (no bytes at all) occupies the only slot…
    let mut idler = NetClient::connect(server.addr()).expect("connect");
    // …until the idle guard closes it: the read eventually reports EOF (or a
    // reset), never a Malformed frame — silence is not a protocol error.
    assert!(
        idler.recv().is_err(),
        "idle connection must be closed silently, not answered"
    );
    // The slot is free again: a real client connects and gets full-fidelity
    // answers. Retry briefly to let the server reap the closed connection.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut c = NetClient::connect(server.addr()).expect("connect");
        match c.call(RequestFrame {
            request_id: 1,
            client_id: 0,
            theta: 5.0,
            deadline_us: 0,
            model: String::new(),
            query: WireQuery::Index(0),
        }) {
            Ok(Frame::Response(r)) => {
                assert_eq!(r.estimate.to_bits(), reference[0].to_bits());
                break;
            }
            _ if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25))
            }
            other => panic!("idle connection pinned its slot: {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn mid_request_disconnect_releases_admission_state() {
    let (server, _ds, reference) = start_server(NetConfig {
        queue_limit: 2,
        ..NetConfig::default()
    });
    // Submit two valid requests (filling the bounded queue) and vanish
    // without reading the answers.
    {
        let mut c = NetClient::connect(server.addr()).expect("connect");
        for i in 0..2u64 {
            c.send(&Frame::Request(RequestFrame {
                request_id: i,
                client_id: 0,
                theta: 5.0,
                deadline_us: 0,
                model: String::new(),
                query: WireQuery::Index(i),
            }))
            .expect("send");
        }
        c.stream().shutdown(Shutdown::Both).expect("vanish");
    }
    // The in-flight gauge must drain once the service answers into the dead
    // connection, or every later request would be shed forever. `probe`
    // sends full-fidelity requests that would fail if the gauge leaked.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut c = NetClient::connect(server.addr()).expect("connect");
        let got = c.call(RequestFrame {
            request_id: 9,
            client_id: 0,
            theta: 5.0,
            deadline_us: 0,
            model: String::new(),
            query: WireQuery::Index(0),
        });
        match got {
            Ok(Frame::Response(r)) if !r.degraded => {
                assert_eq!(r.estimate.to_bits(), reference[0].to_bits());
                break;
            }
            _ if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25))
            }
            other => panic!("admission state leaked after disconnect: {other:?}"),
        }
    }
    probe(&server, &reference, 1);
    server.shutdown();
}
