//! `cardest-serve`: a concurrent estimation service.
//!
//! The paper's economics only pay off inside a long-running system: a learned
//! estimator answers in microseconds what exact selection answers in
//! milliseconds (Table 6), so the estimator is deployed as a shared component
//! queried concurrently by many optimizer sessions. This crate is that
//! deployment shell, built on `std` threads and mpsc channels only (the
//! workspace's dependency policy has no async runtime):
//!
//! * [`registry::ModelRegistry`] — named, `Arc`-wrapped estimators with
//!   epoch-tagged hot-swap: a freshly retrained snapshot replaces the live
//!   model without pausing in-flight queries, and a half-written model is
//!   unrepresentable.
//! * [`service::Service`] — a worker pool that drains the request queue into
//!   **micro-batches** and feeds them through the estimator's batch-first
//!   API ([`cardest_core::CardinalityEstimator::estimate_batch`]): queries
//!   are `prepare`d once at ingress, the encoder runs once per batch, and
//!   every served value stays bit-identical to the unbatched scalar path.
//! * [`cache::EstimateCache`] — a sharded LRU cache keyed by
//!   `(model epoch, query fingerprint, τ-bucket)` that exploits the
//!   monotonicity guarantee: a lookup at τ bracketed by cached τ₁ ≤ τ ≤ τ₂
//!   yields the *bounds* `[ĉ(τ₁), ĉ(τ₂)]` as a
//!   [`cardest_core::Estimate`] — something no non-monotone estimator could
//!   offer — and short-circuits when the bracket is pinned or tight. With
//!   [`service::ServeConfig::cache_curve_points`] set, computed misses seed
//!   the cache with whole threshold-curve points, turning repeat θ-sweeps
//!   into exact hits.
//! * [`stats::ServiceStats`] — lock-free counters: throughput, p50/p99
//!   latency, cache hit/bound-hit rates, shed/quota counters, and a
//!   batch-size histogram.
//! * [`wire`] + [`net`] — the network edge: a length-prefixed binary frame
//!   codec (versioned header, request ids, τ, degraded flag) and a std-only
//!   TCP front-end with per-connection reader/writer threads, bounded-queue
//!   admission control, per-client quotas, and load shedding that falls back
//!   to the monotone cache's `[lo, hi]` bracket instead of queuing without
//!   bound.
//!
//! ```no_run
//! use cardest_serve::{ModelRegistry, ServeConfig, Service};
//! use std::sync::Arc;
//! # fn trained() -> cardest_core::CardNetEstimator { unimplemented!() }
//! # fn a_record() -> std::sync::Arc<cardest_data::Record> { unimplemented!() }
//! let registry = Arc::new(ModelRegistry::new());
//! registry.publish("default", trained());
//! let service = Service::start(Arc::clone(&registry), ServeConfig::default());
//! let resp = service.estimate("default", a_record(), 8.0).unwrap();
//! println!("ĉ = {} (model epoch {})", resp.estimate, resp.epoch);
//! ```

pub mod cache;
pub mod http;
pub mod lockwitness;
pub mod net;
pub mod obs_export;
pub mod registry;
pub mod service;
pub mod stats;
pub mod wire;

#[cfg(test)]
pub(crate) mod testutil;

pub use cache::{CacheLookup, EstimateCache};
pub use http::MetricsServer;
pub use net::{NetClient, NetConfig, NetServer};
pub use obs_export::{metrics_snapshot, wire_counters};
pub use registry::{ModelRegistry, RegistryReader, ServeModel};
pub use service::{
    EstimateSource, Request, Response, ServeConfig, ServeError, Service, ServiceClient,
};
pub use stats::{ClientStats, ServiceStats, StatsSnapshot};
pub use wire::{
    Decoder, ErrorCode, ErrorFrame, Frame, RequestFrame, ResponseFrame, StatsFrame, TracesFrame,
    WireError, WireQuery, WireSource, WireTrace, MAX_STATS_ENTRIES, MAX_TRACE_STAGES,
    MAX_WIRE_TRACES,
};
