//! Wire protocol v1: the length-prefixed binary framing the socket ingress
//! ([`crate::net`]) speaks.
//!
//! Every frame is `u32` little-endian *payload length* followed by the
//! payload itself; the payload opens with a fixed 4-byte header
//! (`magic 0xC5`, `version`, `kind`, `flags`) and closes with a kind-specific
//! body. All integers are little-endian; floats travel as their IEEE-754 bit
//! patterns, so a served estimate crosses the wire **bit-exactly**.
//!
//! ```text
//! frame    := len:u32 payload              (len = payload byte count)
//! payload  := magic:u8 version:u8 kind:u8 flags:u8 body
//! request  := id:u64 client:u64 θ:f64 deadline_us:u32 model:str8 query
//! query    := 0x00 index:u64  |  0x01 bits:u32 words:[u64]
//! response := id:u64 epoch:u64 ĉ:f64 lo:f64 hi:f64 source:u8 batch:u32
//! error    := id:u64 code:u8 message:str16
//! ping/pong:= token:u64
//! statsreq := token:u64
//! stats    := token:u64 n:u16 (name:str8 value:u64)*n
//! tracereq := token:u64 max:u32
//! traces   := token:u64 n:u16 trace*n
//! trace    := id:u64 epoch:u64 total_ns:u64 source:u8 k:u8 stage_ns:[u64;k]
//! str8/16  := len:u8|u16 utf8-bytes
//! ```
//!
//! The decoder is **total**: any byte sequence either yields frames or a
//! typed [`WireError`] — it never panics and never allocates proportionally
//! to a hostile length prefix (lengths above [`MAX_PAYLOAD`] are rejected
//! before any buffering decision is made on them). Encoding is *canonical*
//! (query padding bits zero, exact body length), so
//! `decode(encode(f)) == f` for every value and the proptests in
//! `crates/serve/tests/wire_proptest.rs` can require exact round-trips.

use cardest_data::BitVec;
use std::io::Write;

/// First payload byte of every frame.
pub const MAGIC: u8 = 0xC5;
/// Protocol version this build speaks (header byte 2).
pub const WIRE_VERSION: u8 = 1;
/// Hard ceiling on a frame's payload size. A length prefix above this is a
/// protocol error — the decoder refuses it *before* buffering, so a hostile
/// 4 GiB length prefix cannot reserve memory or stall the connection.
pub const MAX_PAYLOAD: usize = 64 * 1024;
/// Response-header flag: the estimate is a degraded (load-shed) answer from
/// the monotone cache bracket, not a model run.
pub const FLAG_DEGRADED: u8 = 0b0000_0001;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_PING: u8 = 4;
const KIND_PONG: u8 = 5;
const KIND_STATS_REQUEST: u8 = 6;
const KIND_STATS: u8 = 7;
const KIND_TRACE_REQUEST: u8 = 8;
const KIND_TRACES: u8 = 9;

/// Most counter entries a [`StatsFrame`] encodes. Each entry is at most
/// 264 bytes (str8 name + u64), so the cap keeps the frame well inside
/// [`MAX_PAYLOAD`]; the encoder truncates beyond it.
pub const MAX_STATS_ENTRIES: usize = 200;
/// Most traces a [`TracesFrame`] encodes; with [`MAX_TRACE_STAGES`] stages a
/// trace is ≤ 282 bytes, so 128 traces stay inside [`MAX_PAYLOAD`].
pub const MAX_WIRE_TRACES: usize = 128;
/// Most per-stage entries one wire trace carries (the encoder truncates the
/// stage array beyond this).
pub const MAX_TRACE_STAGES: usize = 32;

/// The query a request carries: an index into the server's loaded dataset
/// (the compact form optimizer sessions co-located with the data use), or an
/// inline extracted bit vector for clients that do not share the dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireQuery {
    Index(u64),
    Bits(BitVec),
}

/// One estimation request (client → server).
#[derive(Clone, Debug)]
pub struct RequestFrame {
    /// Client-chosen correlation id, echoed verbatim in the answer.
    pub request_id: u64,
    /// Stable client identity for quota accounting; `0` means anonymous
    /// (the server falls back to per-connection identity).
    pub client_id: u64,
    /// Similarity threshold θ.
    pub theta: f64,
    /// Per-request latency budget in microseconds; `0` defers to the
    /// server's default. A request still queued past its deadline is load-
    /// shed instead of computed.
    pub deadline_us: u32,
    /// Registry model name; empty selects `"default"`.
    pub model: String,
    pub query: WireQuery,
}

/// How the server produced a response (mirrors
/// [`crate::EstimateSource`] plus the shed path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireSource {
    Computed = 0,
    Coalesced = 1,
    CacheExact = 2,
    CacheBounds = 3,
    /// Load-shed: answered from the monotone cache bracket without a model
    /// run. Always paired with the [`FLAG_DEGRADED`] header flag.
    ShedBracket = 4,
}

impl WireSource {
    fn from_u8(v: u8) -> Option<WireSource> {
        match v {
            0 => Some(WireSource::Computed),
            1 => Some(WireSource::Coalesced),
            2 => Some(WireSource::CacheExact),
            3 => Some(WireSource::CacheBounds),
            4 => Some(WireSource::ShedBracket),
            _ => None,
        }
    }
}

/// One served estimate (server → client).
#[derive(Clone, Debug)]
pub struct ResponseFrame {
    pub request_id: u64,
    /// Publish epoch of the model that answered.
    pub epoch: u64,
    pub estimate: f64,
    /// Monotone bounds around the estimate (`lo == hi == estimate` when the
    /// value is exact). For a degraded answer these are the cache bracket
    /// the client should trust instead of the point value.
    pub lo: f64,
    pub hi: f64,
    pub source: WireSource,
    /// Micro-batch size for computed answers, `0` otherwise.
    pub batch: u32,
    /// Mirrors the [`FLAG_DEGRADED`] header flag.
    pub degraded: bool,
}

/// Typed error codes a server can answer with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame could not be decoded; the connection closes after
    /// this frame (a corrupt length-prefixed stream cannot be resynced).
    Malformed = 1,
    UnknownModel = 2,
    /// Query index out of range, or an inline query the model cannot take.
    BadQuery = 3,
    /// Admission control rejected the request and no cache bracket was
    /// available for a degraded answer.
    Overloaded = 4,
    QuotaExceeded = 5,
    ShuttingDown = 6,
    /// The request sat queued past its deadline and no bracket was cached.
    DeadlineExceeded = 7,
    ConnLimit = 8,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::UnknownModel),
            3 => Some(ErrorCode::BadQuery),
            4 => Some(ErrorCode::Overloaded),
            5 => Some(ErrorCode::QuotaExceeded),
            6 => Some(ErrorCode::ShuttingDown),
            7 => Some(ErrorCode::DeadlineExceeded),
            8 => Some(ErrorCode::ConnLimit),
            _ => None,
        }
    }
}

/// A request-scoped failure (server → client). `request_id == 0` marks
/// connection-level errors that are not tied to one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    pub request_id: u64,
    pub code: ErrorCode,
    pub message: String,
}

/// Server metrics pulled over the socket (server → client): a flat,
/// order-preserving list of named counters — the wire form of the
/// observability layer's `MetricsSnapshot` counter section. Self-describing
/// by name so new metrics never require a protocol change.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsFrame {
    /// Echo of the requesting [`Frame::StatsRequest`] token.
    pub token: u64,
    /// `(metric name, value)` pairs in export order (at most
    /// [`MAX_STATS_ENTRIES`]; the encoder truncates beyond that).
    pub counters: Vec<(String, u64)>,
}

impl StatsFrame {
    /// Look up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// One captured request trace in wire form: per-stage nanoseconds indexed by
/// the observability layer's stage order, plus end-to-end total, epoch, and
/// answer source.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireTrace {
    pub id: u64,
    pub epoch: u64,
    pub total_ns: u64,
    /// Answer-source code (the [`WireSource`] discriminant).
    pub source: u8,
    /// Per-stage accumulated nanoseconds (at most [`MAX_TRACE_STAGES`]).
    pub stages_ns: Vec<u64>,
}

/// Recent traces pulled over the socket (server → client).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TracesFrame {
    /// Echo of the requesting [`Frame::TraceRequest`] token.
    pub token: u64,
    /// Oldest-first traces (at most [`MAX_WIRE_TRACES`]).
    pub traces: Vec<WireTrace>,
}

/// Every frame the protocol knows.
#[derive(Clone, Debug)]
pub enum Frame {
    Request(RequestFrame),
    Response(ResponseFrame),
    Error(ErrorFrame),
    Ping(u64),
    Pong(u64),
    /// Client → server: pull a [`Frame::Stats`] metrics snapshot. The token
    /// is echoed in the reply so pipelined pulls can be correlated.
    StatsRequest(u64),
    Stats(StatsFrame),
    /// Client → server: pull up to `max` recent traces (slow queries first
    /// are the server's choice; `max == 0` means the server's cap).
    TraceRequest {
        token: u64,
        max: u32,
    },
    Traces(TracesFrame),
}

// Floats compare by bit pattern: the protocol's contract is bit-exact
// transport, and `NaN != NaN` would make valid round-trips "unequal".
impl PartialEq for RequestFrame {
    fn eq(&self, other: &Self) -> bool {
        self.request_id == other.request_id
            && self.client_id == other.client_id
            && self.theta.to_bits() == other.theta.to_bits()
            && self.deadline_us == other.deadline_us
            && self.model == other.model
            && self.query == other.query
    }
}

impl PartialEq for ResponseFrame {
    fn eq(&self, other: &Self) -> bool {
        self.request_id == other.request_id
            && self.epoch == other.epoch
            && self.estimate.to_bits() == other.estimate.to_bits()
            && self.lo.to_bits() == other.lo.to_bits()
            && self.hi.to_bits() == other.hi.to_bits()
            && self.source == other.source
            && self.batch == other.batch
            && self.degraded == other.degraded
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Frame::Request(a), Frame::Request(b)) => a == b,
            (Frame::Response(a), Frame::Response(b)) => a == b,
            (Frame::Error(a), Frame::Error(b)) => a == b,
            (Frame::Ping(a), Frame::Ping(b)) | (Frame::Pong(a), Frame::Pong(b)) => a == b,
            (Frame::StatsRequest(a), Frame::StatsRequest(b)) => a == b,
            (Frame::Stats(a), Frame::Stats(b)) => a == b,
            (
                Frame::TraceRequest { token: a, max: am },
                Frame::TraceRequest { token: b, max: bm },
            ) => a == b && am == bm,
            (Frame::Traces(a), Frame::Traces(b)) => a == b,
            _ => false,
        }
    }
}

/// Everything that can be wrong with incoming bytes. Total: the decoder
/// maps any input to frames or one of these, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    BadMagic(u8),
    BadVersion(u8),
    BadKind(u8),
    /// Length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload ended before the body it promised.
    Truncated,
    /// The body decoded but bytes were left over — a framing bug on the
    /// sender's side, rejected to keep encoding canonical.
    TrailingBytes,
    BadUtf8,
    BadQueryTag(u8),
    BadSource(u8),
    BadErrorCode(u8),
    /// Header flag bits this frame kind does not define — rejected so every
    /// accepted payload has exactly one encoding.
    BadFlags(u8),
    /// Inline query bits with nonzero padding in the last word — rejected
    /// so equal queries have exactly one wire form.
    NonCanonicalBits,
    /// A stats/traces list longer than the protocol cap — rejected so
    /// accepted payloads always re-encode byte-identically (the encoder
    /// truncates at the cap).
    TooManyEntries(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02X} (want 0x{MAGIC:02X})"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v} (speak {WIRE_VERSION})"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized(n) => {
                write!(f, "length prefix {n} exceeds max payload {MAX_PAYLOAD}")
            }
            WireError::Truncated => write!(f, "payload shorter than its body"),
            WireError::TrailingBytes => write!(f, "payload longer than its body"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::BadQueryTag(t) => write!(f, "unknown query tag {t}"),
            WireError::BadSource(s) => write!(f, "unknown response source {s}"),
            WireError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            WireError::BadFlags(b) => write!(f, "undefined header flag bits 0x{b:02X}"),
            WireError::NonCanonicalBits => write!(f, "inline query has nonzero padding bits"),
            WireError::TooManyEntries(n) => write!(f, "list of {n} entries exceeds protocol cap"),
        }
    }
}

impl std::error::Error for WireError {}

// ── Encoding ─────────────────────────────────────────────────────────────

/// Longest prefix of `s` at most `max` bytes that ends on a char boundary —
/// truncating an over-long string must never split a multi-byte character,
/// or the receiver would reject the frame as [`WireError::BadUtf8`].
fn utf8_prefix(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    // Single backward scan over the raw bytes: step past UTF-8 continuation
    // bytes (0b10xxxxxx) to the nearest boundary at or below `max`, then
    // slice exactly once. `.get(..end)` cannot fail here, but the fallback
    // keeps the hostile-input no-panic guarantee structural.
    let b = s.as_bytes();
    let mut end = max;
    while end > 0 && b.get(end).is_some_and(|&c| c & 0xC0 == 0x80) {
        end -= 1;
    }
    s.get(..end).unwrap_or(s)
}

fn put_str8(out: &mut Vec<u8>, s: &str) {
    let s = utf8_prefix(s, u8::MAX as usize);
    out.push(s.len() as u8);
    out.extend_from_slice(s.as_bytes());
}

/// Byte budget for a str16 field: the longest message that still leaves an
/// error frame (header, request id, code, length prefix) within
/// [`MAX_PAYLOAD`], so truncated encodes always produce acceptable frames.
const MAX_STR16: usize = MAX_PAYLOAD - 32;

fn put_str16(out: &mut Vec<u8>, s: &str) {
    let s = utf8_prefix(s, MAX_STR16);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl Frame {
    /// Serializes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, flags) = match self {
            Frame::Request(_) => (KIND_REQUEST, 0),
            Frame::Response(r) => (KIND_RESPONSE, if r.degraded { FLAG_DEGRADED } else { 0 }),
            Frame::Error(_) => (KIND_ERROR, 0),
            Frame::Ping(_) => (KIND_PING, 0),
            Frame::Pong(_) => (KIND_PONG, 0),
            Frame::StatsRequest(_) => (KIND_STATS_REQUEST, 0),
            Frame::Stats(_) => (KIND_STATS, 0),
            Frame::TraceRequest { .. } => (KIND_TRACE_REQUEST, 0),
            Frame::Traces(_) => (KIND_TRACES, 0),
        };
        let mut payload = vec![MAGIC, WIRE_VERSION, kind, flags];
        match self {
            Frame::Request(r) => {
                payload.extend_from_slice(&r.request_id.to_le_bytes());
                payload.extend_from_slice(&r.client_id.to_le_bytes());
                payload.extend_from_slice(&r.theta.to_bits().to_le_bytes());
                payload.extend_from_slice(&r.deadline_us.to_le_bytes());
                put_str8(&mut payload, &r.model);
                match &r.query {
                    WireQuery::Index(i) => {
                        payload.push(0);
                        payload.extend_from_slice(&i.to_le_bytes());
                    }
                    WireQuery::Bits(bits) => {
                        payload.push(1);
                        payload.extend_from_slice(&(bits.len() as u32).to_le_bytes());
                        for w in bits.words() {
                            payload.extend_from_slice(&w.to_le_bytes());
                        }
                    }
                }
            }
            Frame::Response(r) => {
                payload.extend_from_slice(&r.request_id.to_le_bytes());
                payload.extend_from_slice(&r.epoch.to_le_bytes());
                payload.extend_from_slice(&r.estimate.to_bits().to_le_bytes());
                payload.extend_from_slice(&r.lo.to_bits().to_le_bytes());
                payload.extend_from_slice(&r.hi.to_bits().to_le_bytes());
                payload.push(r.source as u8);
                payload.extend_from_slice(&r.batch.to_le_bytes());
            }
            Frame::Error(e) => {
                payload.extend_from_slice(&e.request_id.to_le_bytes());
                payload.push(e.code as u8);
                put_str16(&mut payload, &e.message);
            }
            Frame::Ping(token) | Frame::Pong(token) | Frame::StatsRequest(token) => {
                payload.extend_from_slice(&token.to_le_bytes());
            }
            Frame::Stats(s) => {
                payload.extend_from_slice(&s.token.to_le_bytes());
                let n = s.counters.len().min(MAX_STATS_ENTRIES);
                payload.extend_from_slice(&(n as u16).to_le_bytes());
                for (name, value) in s.counters.iter().take(n) {
                    put_str8(&mut payload, name);
                    payload.extend_from_slice(&value.to_le_bytes());
                }
            }
            Frame::TraceRequest { token, max } => {
                payload.extend_from_slice(&token.to_le_bytes());
                payload.extend_from_slice(&max.to_le_bytes());
            }
            Frame::Traces(t) => {
                payload.extend_from_slice(&t.token.to_le_bytes());
                let n = t.traces.len().min(MAX_WIRE_TRACES);
                payload.extend_from_slice(&(n as u16).to_le_bytes());
                for trace in t.traces.iter().take(n) {
                    payload.extend_from_slice(&trace.id.to_le_bytes());
                    payload.extend_from_slice(&trace.epoch.to_le_bytes());
                    payload.extend_from_slice(&trace.total_ns.to_le_bytes());
                    payload.push(trace.source);
                    let k = trace.stages_ns.len().min(MAX_TRACE_STAGES);
                    payload.push(k as u8);
                    for ns in trace.stages_ns.iter().take(k) {
                        payload.extend_from_slice(&ns.to_le_bytes());
                    }
                }
            }
        }
        debug_assert!(
            payload.len() <= MAX_PAYLOAD,
            "encoder produced a giant frame"
        );
        let mut out = Vec::with_capacity(4 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Writes the encoded frame to `w` (one `write_all`, no flush).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.encode())
    }
}

// ── Decoding ─────────────────────────────────────────────────────────────

/// Cursor over one frame's payload; every read is bounds-checked.
struct Body<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Body<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.b.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Fixed-size read; `take` guarantees exactly `N` bytes, so the
    /// conversion cannot fail, but the error path stays typed regardless.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| WireError::Truncated)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.array::<1>()?;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str8(&mut self) -> Result<String, WireError> {
        let n = self.u8()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn str16(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// Decodes one complete payload (header + body, length prefix already
/// stripped and bounded by [`MAX_PAYLOAD`]).
pub fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    let mut body = Body { b: payload, pos: 0 };
    let magic = body.u8()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = body.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = body.u8()?;
    let flags = body.u8()?;
    // Only responses define a flag; undefined bits are rejected so accepted
    // payloads stay canonical (exactly one wire form per frame value).
    let defined = if kind == KIND_RESPONSE {
        FLAG_DEGRADED
    } else {
        0
    };
    if flags & !defined != 0 {
        return Err(WireError::BadFlags(flags & !defined));
    }
    let frame = match kind {
        KIND_REQUEST => {
            let request_id = body.u64()?;
            let client_id = body.u64()?;
            let theta = body.f64()?;
            let deadline_us = body.u32()?;
            let model = body.str8()?;
            let query = match body.u8()? {
                0 => WireQuery::Index(body.u64()?),
                1 => {
                    let len = body.u32()? as usize;
                    let n_words = len.div_ceil(64);
                    // The bit count is attacker-controlled: before allocating
                    // anything proportional to it, require the payload to
                    // actually carry the words it promises. This caps the
                    // allocation at the payload size (≤ MAX_PAYLOAD) instead
                    // of the 512 MiB a hostile `len = u32::MAX` would claim.
                    let promised = n_words.checked_mul(8).ok_or(WireError::Truncated)?;
                    if promised > body.b.len() - body.pos {
                        return Err(WireError::Truncated);
                    }
                    let mut bits = BitVec::zeros(len);
                    for w in 0..n_words {
                        let word = body.u64()?;
                        let base = w * 64;
                        for b in 0..64 {
                            if (word >> b) & 1 == 1 {
                                if base + b >= len {
                                    return Err(WireError::NonCanonicalBits);
                                }
                                bits.set(base + b, true);
                            }
                        }
                    }
                    WireQuery::Bits(bits)
                }
                tag => return Err(WireError::BadQueryTag(tag)),
            };
            Frame::Request(RequestFrame {
                request_id,
                client_id,
                theta,
                deadline_us,
                model,
                query,
            })
        }
        KIND_RESPONSE => Frame::Response(ResponseFrame {
            request_id: body.u64()?,
            epoch: body.u64()?,
            estimate: body.f64()?,
            lo: body.f64()?,
            hi: body.f64()?,
            source: {
                let s = body.u8()?;
                WireSource::from_u8(s).ok_or(WireError::BadSource(s))?
            },
            batch: body.u32()?,
            degraded: flags & FLAG_DEGRADED != 0,
        }),
        KIND_ERROR => Frame::Error(ErrorFrame {
            request_id: body.u64()?,
            code: {
                let c = body.u8()?;
                ErrorCode::from_u8(c).ok_or(WireError::BadErrorCode(c))?
            },
            message: body.str16()?,
        }),
        KIND_PING => Frame::Ping(body.u64()?),
        KIND_PONG => Frame::Pong(body.u64()?),
        KIND_STATS_REQUEST => Frame::StatsRequest(body.u64()?),
        KIND_STATS => {
            let token = body.u64()?;
            let n = body.u16()?;
            if n as usize > MAX_STATS_ENTRIES {
                return Err(WireError::TooManyEntries(n));
            }
            let mut counters = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let name = body.str8()?;
                let value = body.u64()?;
                counters.push((name, value));
            }
            Frame::Stats(StatsFrame { token, counters })
        }
        KIND_TRACE_REQUEST => Frame::TraceRequest {
            token: body.u64()?,
            max: body.u32()?,
        },
        KIND_TRACES => {
            let token = body.u64()?;
            let n = body.u16()?;
            if n as usize > MAX_WIRE_TRACES {
                return Err(WireError::TooManyEntries(n));
            }
            let mut traces = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let id = body.u64()?;
                let epoch = body.u64()?;
                let total_ns = body.u64()?;
                let source = body.u8()?;
                let k = body.u8()?;
                if k as usize > MAX_TRACE_STAGES {
                    return Err(WireError::TooManyEntries(k as u16));
                }
                let mut stages_ns = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    stages_ns.push(body.u64()?);
                }
                traces.push(WireTrace {
                    id,
                    epoch,
                    total_ns,
                    source,
                    stages_ns,
                });
            }
            Frame::Traces(TracesFrame { token, traces })
        }
        other => return Err(WireError::BadKind(other)),
    };
    body.done()?;
    Ok(frame)
}

/// Incremental frame decoder: feed bytes as they arrive, pop frames as they
/// complete. After the first [`WireError`] the stream is unrecoverable (a
/// corrupt length prefix desynchronizes everything after it), so callers
/// close the connection.
#[derive(Default)]
#[must_use]
pub struct Decoder {
    buf: Vec<u8>,
    bytes_consumed: u64,
    frames_decoded: u64,
}

impl Decoder {
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are needed.
    #[must_use = "a dropped feed result may hide a decoded frame or a fatal wire error"]
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let Some(prefix) = self.buf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(*prefix);
        if len as usize > MAX_PAYLOAD {
            return Err(WireError::Oversized(len));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let result = decode_payload(self.buf.get(4..total).ok_or(WireError::Truncated)?);
        // Consume the frame even on error: the caller is about to close the
        // connection, but a consistent buffer costs nothing.
        self.buf.drain(..total);
        self.bytes_consumed += total as u64;
        if result.is_ok() {
            self.frames_decoded += 1;
        }
        result.map(Some)
    }

    /// Total bytes consumed from the stream as complete frames (length
    /// prefixes included; buffered partial input is *not* counted until its
    /// frame completes). Feeds per-connection ingress byte-rate metrics.
    pub fn bytes_consumed(&self) -> u64 {
        self.bytes_consumed
    }

    /// Total frames successfully decoded from the stream.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Whether a frame has started arriving but is not complete — the
    /// condition a slow-loris watchdog times out on.
    pub fn mid_frame(&self) -> bool {
        if self.buf.is_empty() {
            return false;
        }
        let Some(prefix) = self.buf.first_chunk::<4>() else {
            return true;
        };
        let len = u32::from_le_bytes(*prefix);
        self.buf.len() < 4 + (len as usize).min(MAX_PAYLOAD + 1)
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Request(RequestFrame {
                request_id: 7,
                client_id: 3,
                theta: 8.25,
                deadline_us: 1500,
                model: "default".into(),
                query: WireQuery::Index(42),
            }),
            Frame::Request(RequestFrame {
                request_id: u64::MAX,
                client_id: 0,
                theta: f64::NAN,
                deadline_us: 0,
                model: String::new(),
                query: WireQuery::Bits({
                    // Two words, so the encoder's word loop is exercised.
                    let mut bits = BitVec::zeros(70);
                    for i in [0, 1, 3, 64, 69] {
                        bits.set(i, true);
                    }
                    bits
                }),
            }),
            Frame::Response(ResponseFrame {
                request_id: 7,
                epoch: 2,
                estimate: 123.5,
                lo: 120.0,
                hi: 130.0,
                source: WireSource::ShedBracket,
                batch: 0,
                degraded: true,
            }),
            Frame::Error(ErrorFrame {
                request_id: 9,
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            }),
            Frame::Ping(0xDEAD),
            Frame::Pong(0xBEEF),
            Frame::StatsRequest(11),
            Frame::Stats(StatsFrame {
                token: 11,
                counters: vec![
                    ("cardest_requests_total".into(), 12345),
                    ("cardest_sheds_total".into(), 0),
                    (String::new(), u64::MAX),
                ],
            }),
            Frame::TraceRequest { token: 5, max: 64 },
            Frame::Traces(TracesFrame {
                token: 5,
                traces: vec![
                    WireTrace {
                        id: 1,
                        epoch: 3,
                        total_ns: 1_000_000,
                        source: 0,
                        stages_ns: vec![10, 20, 30, 0, 40, 0, 900_000, 800_000, 90_000, 5],
                    },
                    WireTrace {
                        id: 2,
                        epoch: 3,
                        total_ns: 0,
                        source: 4,
                        stages_ns: Vec::new(),
                    },
                ],
            }),
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let mut dec = Decoder::new();
            dec.extend(&bytes);
            let back = dec.next_frame().expect("valid").expect("complete");
            assert_eq!(back, frame);
            assert_eq!(dec.buffered(), 0);
            assert!(dec.next_frame().expect("clean").is_none());
        }
    }

    #[test]
    fn byte_at_a_time_feeding_decodes_the_same_stream() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut dec = Decoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.extend(&[b]);
            while let Some(f) = dec.next_frame().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert!(!dec.mid_frame());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut dec = Decoder::new();
        dec.extend(&u32::MAX.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::Oversized(u32::MAX)));
    }

    #[test]
    fn header_errors_are_typed() {
        // Bad magic.
        let mut bad = Frame::Ping(1).encode();
        bad[4] = 0x00;
        assert_eq!(decode_payload(&bad[4..]), Err(WireError::BadMagic(0)));
        // Bad version.
        let mut bad = Frame::Ping(1).encode();
        bad[5] = 99;
        assert_eq!(decode_payload(&bad[4..]), Err(WireError::BadVersion(99)));
        // Bad kind.
        let mut bad = Frame::Ping(1).encode();
        bad[6] = 0xFF;
        assert_eq!(decode_payload(&bad[4..]), Err(WireError::BadKind(0xFF)));
    }

    #[test]
    fn body_level_errors_are_typed() {
        // Undefined flag bits: only responses define a flag, so any flag on
        // a ping is rejected with the offending bits.
        let mut payload = vec![MAGIC, WIRE_VERSION, KIND_PING, 0x02];
        payload.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(decode_payload(&payload), Err(WireError::BadFlags(0x02)));

        // Request prefix shared by the query-tag and UTF-8 probes.
        let request_prefix = |model: &[u8]| {
            let mut p = vec![MAGIC, WIRE_VERSION, KIND_REQUEST, 0];
            p.extend_from_slice(&1u64.to_le_bytes()); // request_id
            p.extend_from_slice(&0u64.to_le_bytes()); // client_id
            p.extend_from_slice(&1.0f64.to_bits().to_le_bytes()); // theta
            p.extend_from_slice(&0u32.to_le_bytes()); // deadline_us
            p.push(model.len() as u8);
            p.extend_from_slice(model);
            p
        };

        // Invalid UTF-8 in the model-name string field.
        let payload = request_prefix(&[0xFF, 0xFE]);
        assert_eq!(decode_payload(&payload), Err(WireError::BadUtf8));

        // Unknown query tag after a valid prefix.
        let mut payload = request_prefix(b"m");
        payload.push(9); // neither 0 (index) nor 1 (inline bits)
        assert_eq!(decode_payload(&payload), Err(WireError::BadQueryTag(9)));

        // Unknown response source byte.
        let mut payload = vec![MAGIC, WIRE_VERSION, KIND_RESPONSE, 0];
        payload.extend_from_slice(&1u64.to_le_bytes()); // request_id
        payload.extend_from_slice(&3u64.to_le_bytes()); // epoch
        for _ in 0..3 {
            payload.extend_from_slice(&1.0f64.to_bits().to_le_bytes()); // estimate/lo/hi
        }
        payload.push(0xEE);
        assert_eq!(decode_payload(&payload), Err(WireError::BadSource(0xEE)));

        // Unknown error code byte.
        let mut payload = vec![MAGIC, WIRE_VERSION, KIND_ERROR, 0];
        payload.extend_from_slice(&1u64.to_le_bytes()); // request_id
        payload.push(0x7F);
        assert_eq!(decode_payload(&payload), Err(WireError::BadErrorCode(0x7F)));
    }

    #[test]
    fn truncated_and_padded_bodies_are_rejected() {
        let full = Frame::Ping(12345).encode();
        // Shorten the payload but fix the length prefix to match.
        let mut short = full.clone();
        short.truncate(full.len() - 3);
        let short_len = (short.len() - 4) as u32;
        short[..4].copy_from_slice(&short_len.to_le_bytes());
        assert_eq!(decode_payload(&short[4..]), Err(WireError::Truncated));
        // Extend the payload and the prefix: trailing bytes.
        let mut long = full;
        long.push(0);
        let long_len = (long.len() - 4) as u32;
        long[..4].copy_from_slice(&long_len.to_le_bytes());
        assert_eq!(decode_payload(&long[4..]), Err(WireError::TrailingBytes));
    }

    #[test]
    fn hostile_inline_bit_count_is_rejected_before_allocating() {
        // A request whose inline query claims u32::MAX bits but carries no
        // words: the decoder must reject it from the byte count alone, never
        // allocating the ~512 MiB the claim implies.
        let mut payload = vec![MAGIC, WIRE_VERSION, KIND_REQUEST, 0];
        payload.extend_from_slice(&1u64.to_le_bytes()); // request_id
        payload.extend_from_slice(&0u64.to_le_bytes()); // client_id
        payload.extend_from_slice(&1.0f64.to_bits().to_le_bytes()); // theta
        payload.extend_from_slice(&0u32.to_le_bytes()); // deadline_us
        payload.push(0); // empty model name
        payload.push(1); // inline-bits query tag
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile bit count
        assert_eq!(decode_payload(&payload), Err(WireError::Truncated));
        // Same through the incremental decoder (length prefix included).
        let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&payload);
        let mut dec = Decoder::new();
        dec.extend(&framed);
        assert_eq!(dec.next_frame(), Err(WireError::Truncated));
    }

    #[test]
    fn overlong_strings_truncate_on_char_boundaries() {
        // 200 two-byte chars = 400 bytes: str8 must cut at ≤255 bytes
        // without splitting a 'é', so the frame stays decodable.
        let long_model: String = "é".repeat(200);
        let frame = Frame::Request(RequestFrame {
            request_id: 1,
            client_id: 0,
            theta: 1.0,
            deadline_us: 0,
            model: long_model.clone(),
            query: WireQuery::Index(0),
        });
        let mut dec = Decoder::new();
        dec.extend(&frame.encode());
        match dec.next_frame().expect("valid utf8").expect("complete") {
            Frame::Request(r) => {
                assert!(r.model.len() <= 255);
                assert_eq!(r.model, utf8_prefix(&long_model, 255));
                assert!(r.model.chars().all(|c| c == 'é'));
            }
            other => panic!("expected request, got {other:?}"),
        }
        // Same for str16 error messages past the frame budget.
        let long_msg: String = "漢".repeat(30_000); // 90_000 bytes of 3-byte chars
        let frame = Frame::Error(ErrorFrame {
            request_id: 2,
            code: ErrorCode::Malformed,
            message: long_msg.clone(),
        });
        let mut dec = Decoder::new();
        dec.extend(&frame.encode());
        match dec.next_frame().expect("valid utf8").expect("complete") {
            Frame::Error(e) => {
                assert!(e.message.len() <= MAX_STR16);
                assert_eq!(e.message, utf8_prefix(&long_msg, MAX_STR16));
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn utf8_prefix_truncation_at_the_exact_cap() {
        // The cap landing exactly on a char boundary must keep every byte:
        // 85 three-byte chars are exactly 255 bytes of str8 budget…
        let exact: String = "漢".repeat(85);
        assert_eq!(exact.len(), 255);
        assert_eq!(utf8_prefix(&exact, 255), exact);
        // …and 86 of them still fill the cap to the last byte, because the
        // boundary after the 85th char is exactly at byte 255.
        let over: String = "漢".repeat(86);
        let cut = utf8_prefix(&over, 255);
        assert_eq!(cut.len(), 255);
        assert_eq!(cut.chars().count(), 85);
        // A 2-byte-char string straddling the cap must back up to the
        // previous boundary — one byte short, never a split char.
        let straddle: String = "é".repeat(128); // 256 bytes
        let cut = utf8_prefix(&straddle, 255);
        assert_eq!(cut.len(), 254);
        assert_eq!(cut.chars().count(), 127);
        // And the encoded str8 roundtrips byte-for-byte at the exact cap.
        let mut out = Vec::new();
        put_str8(&mut out, &exact);
        assert_eq!(out[0] as usize, 255);
        assert_eq!(&out[1..], exact.as_bytes());
    }

    #[test]
    fn noncanonical_padding_bits_are_rejected() {
        let frame = Frame::Request(RequestFrame {
            request_id: 1,
            client_id: 0,
            theta: 1.0,
            deadline_us: 0,
            model: "m".into(),
            query: WireQuery::Bits(BitVec::from_u64(0b111, 10)),
        });
        let mut bytes = frame.encode();
        // Set a padding bit (bit 63 of the single query word — the query
        // word is the last 8 bytes of the frame).
        let last = bytes.len() - 1;
        bytes[last] |= 0x80;
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        assert_eq!(dec.next_frame(), Err(WireError::NonCanonicalBits));
    }

    #[test]
    fn decoder_counters_reconcile_with_chunked_multi_frame_feed() {
        // Feed a many-frame stream in awkward chunk sizes: the decoder's
        // ingress counters must land exactly on the stream's byte and frame
        // totals, with partial input never counted early.
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut dec = Decoder::new();
        let mut decoded = 0u64;
        let mut fed = 0u64;
        for chunk in stream.chunks(7) {
            dec.extend(chunk);
            fed += chunk.len() as u64;
            while let Some(_f) = dec.next_frame().expect("valid stream") {
                decoded += 1;
            }
            // Every byte handed over is either consumed as a complete frame
            // or still buffered as partial input — never dropped or
            // double-counted.
            assert_eq!(dec.bytes_consumed() + dec.buffered() as u64, fed);
            assert_eq!(dec.frames_decoded(), decoded);
        }
        assert_eq!(decoded, frames.len() as u64);
        assert_eq!(dec.frames_decoded(), frames.len() as u64);
        assert_eq!(dec.bytes_consumed(), stream.len() as u64);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn stats_entry_cap_is_enforced_canonically() {
        // An over-cap stats frame truncates on encode...
        let big = StatsFrame {
            token: 1,
            counters: (0..MAX_STATS_ENTRIES + 10)
                .map(|i| (format!("c{i}"), i as u64))
                .collect(),
        };
        let bytes = Frame::Stats(big).encode();
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        match dec.next_frame().expect("valid").expect("complete") {
            Frame::Stats(s) => assert_eq!(s.counters.len(), MAX_STATS_ENTRIES),
            other => panic!("expected stats, got {other:?}"),
        }
        // ...and a hand-built payload claiming more than the cap is rejected
        // before any entry is read.
        let mut payload = vec![MAGIC, WIRE_VERSION, KIND_STATS, 0];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&(MAX_STATS_ENTRIES as u16 + 1).to_le_bytes());
        assert_eq!(
            decode_payload(&payload),
            Err(WireError::TooManyEntries(MAX_STATS_ENTRIES as u16 + 1))
        );
    }

    #[test]
    fn mid_frame_tracks_partial_input() {
        let bytes = Frame::Ping(5).encode();
        let mut dec = Decoder::new();
        assert!(!dec.mid_frame());
        dec.extend(&bytes[..3]);
        assert!(dec.mid_frame());
        assert!(dec.next_frame().expect("no error yet").is_none());
        dec.extend(&bytes[3..]);
        assert!(dec.next_frame().expect("valid").is_some());
        assert!(!dec.mid_frame());
    }
}
