//! Socket ingress: a std-only TCP front-end over the micro-batching
//! [`Service`], speaking the length-prefixed [`crate::wire`] protocol.
//!
//! Layout per connection: one **reader** thread (owns the receive half,
//! decodes frames, performs admission control, submits to the service) and
//! one **writer** thread (drains an in-order queue of pending responses and
//! writes them back). Responses therefore come back in request order per
//! connection, while the worker pool behind the queue stays free to batch
//! and reorder across connections.
//!
//! Admission control happens at ingress, where backpressure belongs:
//!
//! * **Connection limit** ([`NetConfig::max_connections`]) — excess accepts
//!   are answered with one [`ErrorCode::ConnLimit`] frame and closed.
//! * **Per-client quota** ([`NetConfig::client_quota`]) — at most that many
//!   outstanding requests per wire client id (or per connection for
//!   anonymous clients), enforced through the shared
//!   [`crate::ServiceStats`] quota table so rejects land in the same
//!   snapshot as served traffic.
//! * **Bounded queue** ([`NetConfig::queue_limit`]) — when the in-flight
//!   gauge is at the limit, new requests never queue: they are answered
//!   from the monotone cache at full fidelity (exact hit), **degraded**
//!   from a cache bracket (`[lo, hi]`, [`crate::wire::FLAG_DEGRADED`] set), or
//!   refused with [`ErrorCode::Overloaded`]. This is the paper's
//!   monotonicity guarantee doing production work: an overloaded server
//!   still answers with bounded error at zero model cost.
//! * **Deadlines** — a request's `deadline_us` (or
//!   [`NetConfig::default_deadline`]) rides into the queue; a worker that
//!   reaches an expired job sheds it the same way instead of computing.
//!
//! Framing faults (bad magic, oversized length prefix, truncated bodies,
//! slow-loris half-frames past [`NetConfig::frame_timeout`]) poison only
//! their own connection: the reader answers with one
//! [`ErrorCode::Malformed`] frame and closes; the worker pool never sees
//! the bytes. Connections silent between frames past
//! [`NetConfig::idle_timeout`] are closed quietly, so idle connects cannot
//! pin connection slots. Shutdown is a graceful drain — readers stop
//! consuming, writers flush every response already in flight, then the
//! service joins.

use crate::lockwitness::{self, TrackedLock};
use crate::obs_export;
use crate::service::{EstimateSource, Request, Response, ServeError, Service};
use crate::wire::{
    Decoder, ErrorCode, ErrorFrame, Frame, RequestFrame, ResponseFrame, StatsFrame, TracesFrame,
    WireError, WireQuery, WireSource, WireTrace, MAX_WIRE_TRACES,
};
use cardest_data::Record;
use cardest_obs::{Stage, TraceBuilder};
use std::io::{ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Key space for anonymous clients (wire `client_id == 0`): quota accounting
/// falls back to per-connection identity, kept disjoint from real client ids
/// by the top bit.
const CONN_KEY_BASE: u64 = 1 << 63;

/// How often blocked reads and the accept loop wake to poll the stop flag.
const POLL_TICK: Duration = Duration::from_millis(20);

/// Ingress tuning knobs, layered on top of [`crate::ServeConfig`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Concurrent connections accepted; `0` = unlimited. Excess connections
    /// receive one [`ErrorCode::ConnLimit`] frame and are closed.
    pub max_connections: usize,
    /// Bound on requests in flight (queued or computing) across all
    /// connections; `0` = unbounded. At the bound, arrivals are shed —
    /// answered from the cache (exact or degraded bracket) or refused —
    /// never queued.
    pub queue_limit: usize,
    /// Deadline applied to requests that do not carry their own
    /// (`deadline_us == 0`). `None` means such requests never expire.
    pub default_deadline: Option<Duration>,
    /// Max outstanding requests per client id; `0` = unlimited.
    pub client_quota: usize,
    /// Slow-loris guard: a connection that leaves a frame half-sent this
    /// long is answered [`ErrorCode::Malformed`] and closed.
    pub frame_timeout: Duration,
    /// Idle guard: a connection with no traffic for this long *between*
    /// frames is closed, so idle connects cannot pin
    /// [`NetConfig::max_connections`] slots forever. `None` disables it.
    pub idle_timeout: Option<Duration>,
    /// Model served when a request's model name is empty.
    pub default_model: String,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            queue_limit: 1024,
            default_deadline: None,
            client_quota: 0,
            frame_timeout: Duration::from_secs(10),
            idle_timeout: Some(Duration::from_secs(60)),
            default_model: "default".into(),
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    service: Arc<Service>,
    /// Records addressable by [`WireQuery::Index`]; typically the served
    /// dataset, shared with co-located optimizer sessions.
    dataset: Vec<Arc<Record>>,
    config: NetConfig,
    /// Requests admitted to the service queue and not yet answered — the
    /// gauge admission control reads.
    inflight: AtomicUsize,
    /// Open connections.
    conns: AtomicUsize,
    next_conn_id: AtomicU64,
    stop: AtomicBool,
}

/// What the reader hands the writer, in response order.
enum WriterMsg {
    /// Already-materialized frame (pong, error, shed answer).
    Immediate(Frame),
    /// A submitted request: the writer blocks on the service's reply
    /// channel, releases the in-flight gauge and quota slot, and writes the
    /// response.
    Pending {
        request_id: u64,
        client_key: u64,
        rx: Receiver<Result<Response, ServeError>>,
    },
}

/// The running TCP front-end: owns the accept loop, the connection threads,
/// and the [`Service`] behind them.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting. The server
    /// takes ownership of the service; reach it through
    /// [`NetServer::service`] for in-process calls (cache pre-warming,
    /// hot-swap, stats).
    pub fn bind(
        addr: &str,
        service: Service,
        dataset: Vec<Arc<Record>>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: Arc::new(service),
            dataset,
            config,
            inflight: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(1),
            stop: AtomicBool::new(false),
        });
        let conn_joins = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conn_joins = Arc::clone(&conn_joins);
            std::thread::spawn(move || accept_loop(&listener, &shared, &conn_joins))
        };
        Ok(NetServer {
            addr,
            shared,
            accept: Some(accept),
            conn_joins,
        })
    }

    /// The bound address (resolves the port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the socket, for in-process calls alongside
    /// network traffic (hot-swap, cache warming, snapshots).
    pub fn service(&self) -> &Arc<Service> {
        &self.shared.service
    }

    /// Open connections right now.
    pub fn connections(&self) -> usize {
        self.shared.conns.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, stop reading new requests, flush
    /// every response already in flight, join all threads, then shut the
    /// service down.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let joins: Vec<JoinHandle<()>> = {
            // A panicked connection thread poisons the join list; shutdown
            // must still drain it, so recover the guard instead of panicking.
            let _witness = lockwitness::acquire(TrackedLock::ConnJoins);
            let mut guard = self
                .conn_joins
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.drain(..).collect()
        };
        for handle in joins {
            let _ = handle.join();
        }
        // All connection threads are gone, so this is the last `Arc` and the
        // drop joins the worker pool.
        debug_assert_eq!(Arc::strong_count(&self.shared.service), 1);
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_joins: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let limit = shared.config.max_connections;
                if limit > 0 && shared.conns.load(Ordering::Acquire) >= limit {
                    refuse_connection(stream);
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::AcqRel);
                // ordering: relaxed is enough for a unique-id counter — the
                // id is handed to exactly one thread and nothing else is
                // published through this atomic.
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    handle_connection(&shared, stream, conn_id);
                    shared.conns.fetch_sub(1, Ordering::AcqRel);
                });
                // Only this accept thread ever locks the join list while
                // running; recover from a poison left by a panicking
                // shutdown path rather than taking the accept loop down.
                let _witness = lockwitness::acquire(TrackedLock::ConnJoins);
                let mut joins = conn_joins
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                // Reap finished threads while we are here, so a long-running
                // server churning short connections does not accumulate dead
                // JoinHandles without bound.
                joins.retain(|h| !h.is_finished());
                joins.push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL_TICK),
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

/// Tells an over-limit connection why it is being closed (best effort).
fn refuse_connection(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = Frame::Error(ErrorFrame {
        request_id: 0,
        code: ErrorCode::ConnLimit,
        message: "connection limit reached".into(),
    })
    .write_to(&mut stream);
    let _ = stream.shutdown(Shutdown::Both);
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream, conn_id: u64) {
    // Accepted sockets are blocking; switch to short-timeout reads so the
    // reader can poll the stop flag and the slow-loris clock.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(POLL_TICK)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    // capacity: unbounded per-connection writer queue; depth is bounded by
    // this connection's admission-controlled in-flight request count (plus
    // one shutdown marker), so a hostile peer cannot grow it — it can only
    // stop reading, which parks the writer thread, not this queue.
    let (wtx, wrx) = channel::<WriterMsg>();
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || writer_loop(write_half, &wrx, &shared))
    };

    let client = shared.service.client();
    let obs = Arc::clone(shared.service.observer());
    let stats = Arc::clone(shared.service.stats_handle());
    let mut dec = Decoder::new();
    let mut buf = [0u8; 4096];
    // timing: slow-loris idle clock, not a latency measurement — it times
    // the gap between reads to evict stalled clients, so it must tick even
    // when observation is off.
    let mut last_byte = Instant::now();
    // Ingress accounting: the decoder counts complete frames / consumed
    // bytes; deltas since the last report flow into the shared stats after
    // every read, so a snapshot mid-stream reconciles with client totals.
    let mut reported_bytes = 0u64;
    let mut reported_frames = 0u64;
    'conn: while !shared.stop.load(Ordering::Acquire) {
        match stream.read(&mut buf) {
            Ok(0) => break, // clean EOF
            Ok(n) => {
                // timing: refresh of the slow-loris idle clock (see above).
                last_byte = Instant::now();
                // `Read` guarantees n <= buf.len(); fall back to the whole
                // buffer rather than trusting that contract with a panic.
                dec.extend(buf.get(..n).unwrap_or(&buf));
                loop {
                    let t_decode = obs.enabled().then(Instant::now);
                    let next = dec.next_frame();
                    let decode_ns = t_decode
                        .map(|t| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
                        .unwrap_or(0);
                    // Report the delta *before* handling, so a `StatsRequest`
                    // answers with its own frame already counted.
                    stats.record_ingress(
                        dec.bytes_consumed() - reported_bytes,
                        dec.frames_decoded() - reported_frames,
                    );
                    reported_bytes = dec.bytes_consumed();
                    reported_frames = dec.frames_decoded();
                    match next {
                        Ok(Some(frame)) => {
                            if !handle_frame(shared, &client, &wtx, frame, conn_id, decode_ns) {
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            send_error(&wtx, 0, ErrorCode::Malformed, &e.to_string());
                            break 'conn;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if dec.mid_frame() {
                    if last_byte.elapsed() > shared.config.frame_timeout {
                        send_error(
                            &wtx,
                            0,
                            ErrorCode::Malformed,
                            "frame timed out mid-transfer",
                        );
                        break;
                    }
                } else if let Some(idle) = shared.config.idle_timeout {
                    // Between frames: a silent peer eventually loses its
                    // connection slot (idle connects must not exhaust
                    // `max_connections`). A quiet close, not a protocol
                    // error — the client did nothing malformed.
                    if last_byte.elapsed() > idle {
                        break;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break, // peer reset
        }
    }

    // Dropping the sender lets the writer drain every pending response,
    // then exit: a graceful per-connection flush.
    drop(wtx);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Handles one decoded frame; `false` closes the connection. `decode_ns` is
/// the wall clock the reader spent decoding this frame: for requests it
/// seeds the job's trace, for other kinds it feeds the decode histogram
/// directly.
fn handle_frame(
    shared: &Arc<Shared>,
    client: &crate::ServiceClient,
    wtx: &Sender<WriterMsg>,
    frame: Frame,
    conn_id: u64,
    decode_ns: u64,
) -> bool {
    match frame {
        Frame::Ping(token) => {
            shared
                .service
                .observer()
                .record_stage_ns(Stage::Decode, decode_ns);
            let _ = wtx.send(WriterMsg::Immediate(Frame::Pong(token)));
            true
        }
        Frame::Request(req) => {
            handle_request(shared, client, wtx, req, conn_id, decode_ns);
            true
        }
        // Wire-level introspection pulls: answered inline from the shared
        // stats + observer, never touching the request queue — metrics stay
        // readable while the service is saturated.
        Frame::StatsRequest(token) => {
            let obs = shared.service.observer();
            obs.record_stage_ns(Stage::Decode, decode_ns);
            let counters = obs_export::wire_counters(&shared.service.stats(), obs);
            let _ = wtx.send(WriterMsg::Immediate(Frame::Stats(StatsFrame {
                token,
                counters,
            })));
            true
        }
        Frame::TraceRequest { token, max } => {
            let obs = shared.service.observer();
            obs.record_stage_ns(Stage::Decode, decode_ns);
            let cap = if max == 0 {
                MAX_WIRE_TRACES
            } else {
                (max as usize).min(MAX_WIRE_TRACES)
            };
            // Slow queries first (the interesting ones survive truncation),
            // then sampled traces fill the remainder; a trace that is both
            // slow and sampled appears once.
            let mut traces = obs.slow_traces(cap);
            let slow_ids: Vec<u64> = traces.iter().map(|t| t.id).collect();
            for t in obs.recent_traces(cap) {
                if traces.len() >= cap {
                    break;
                }
                if !slow_ids.contains(&t.id) {
                    traces.push(t);
                }
            }
            let traces = traces
                .into_iter()
                .map(|t| WireTrace {
                    id: t.id,
                    epoch: t.epoch,
                    total_ns: t.total_ns,
                    source: t.source,
                    stages_ns: t.stages_ns.to_vec(),
                })
                .collect();
            let _ = wtx.send(WriterMsg::Immediate(Frame::Traces(TracesFrame {
                token,
                traces,
            })));
            true
        }
        // A client has no business sending server-side kinds; treat it as a
        // protocol violation and close.
        Frame::Response(_)
        | Frame::Error(_)
        | Frame::Pong(_)
        | Frame::Stats(_)
        | Frame::Traces(_) => {
            send_error(
                wtx,
                0,
                ErrorCode::Malformed,
                "unexpected frame kind from client",
            );
            false
        }
    }
}

fn handle_request(
    shared: &Arc<Shared>,
    client: &crate::ServiceClient,
    wtx: &Sender<WriterMsg>,
    req: RequestFrame,
    conn_id: u64,
    decode_ns: u64,
) {
    let stats = shared.service.stats_handle();
    // Admission span: everything between decode and enqueue (query lookup,
    // quota check, queue-limit check). Decode + admission are seeded into
    // the job's trace and reach the histograms via `finish_trace`; requests
    // answered at ingress (errors, quota rejects, sheds) never become jobs,
    // so their spans are intentionally not recorded — the histograms
    // describe the served path.
    let obs = shared.service.observer();
    let t_admission = obs.enabled().then(Instant::now);
    let client_key = if req.client_id != 0 {
        req.client_id
    } else {
        CONN_KEY_BASE | conn_id
    };
    let model = if req.model.is_empty() {
        shared.config.default_model.clone()
    } else {
        req.model
    };
    let query: Arc<Record> = match req.query {
        WireQuery::Index(i) => match shared.dataset.get(i as usize) {
            Some(rec) => Arc::clone(rec),
            None => {
                stats.record_request();
                stats.record_error();
                send_error(
                    wtx,
                    req.request_id,
                    ErrorCode::BadQuery,
                    &format!(
                        "query index {i} out of range ({} records)",
                        shared.dataset.len()
                    ),
                );
                return;
            }
        },
        WireQuery::Bits(bits) => Arc::new(Record::Bits(bits)),
    };

    // Quota: at most `client_quota` outstanding requests per client.
    if !stats.client_begin(client_key, shared.config.client_quota) {
        stats.record_request();
        send_error(
            wtx,
            req.request_id,
            ErrorCode::QuotaExceeded,
            "client quota exceeded",
        );
        return;
    }

    // Bounded queue: at the limit requests are shed, never queued. The
    // monotone cache still answers what it can — exactly when it has the
    // entry, degraded from a bracket otherwise.
    let limit = shared.config.queue_limit;
    if limit > 0 && shared.inflight.load(Ordering::Acquire) >= limit {
        stats.record_request();
        match shared.service.shed_answer(&model, &query, req.theta) {
            Ok(Some(resp)) => {
                if resp.source.is_degraded() {
                    stats.client_shed(client_key);
                }
                let _ = wtx.send(WriterMsg::Immediate(Frame::Response(response_frame(
                    req.request_id,
                    &resp,
                ))));
            }
            Ok(None) => {
                stats.record_shed_reject();
                cardest_core::metrics::record_shed();
                send_error(
                    wtx,
                    req.request_id,
                    ErrorCode::Overloaded,
                    "queue full and nothing cached to degrade onto",
                );
            }
            Err(e) => {
                stats.record_error();
                send_error(wtx, req.request_id, error_code(&e), &e.to_string());
            }
        }
        stats.client_end(client_key);
        return;
    }

    let deadline = if req.deadline_us > 0 {
        Some(Duration::from_micros(u64::from(req.deadline_us)))
    } else {
        shared.config.default_deadline
    };
    shared.inflight.fetch_add(1, Ordering::AcqRel);
    let mut trace = TraceBuilder::new();
    if let Some(t) = t_admission {
        trace.add_ns(Stage::Decode, decode_ns);
        trace.add(Stage::Admission, t.elapsed());
    }
    let rx = client.submit_traced(
        Request {
            model,
            query,
            theta: req.theta,
        },
        deadline,
        trace,
    );
    let _ = wtx.send(WriterMsg::Pending {
        request_id: req.request_id,
        client_key,
        rx,
    });
}

fn send_error(wtx: &Sender<WriterMsg>, request_id: u64, code: ErrorCode, message: &str) {
    let _ = wtx.send(WriterMsg::Immediate(Frame::Error(ErrorFrame {
        request_id,
        code,
        message: message.into(),
    })));
}

/// Writes frames back in submission order. Even after a write failure it
/// keeps *draining* pending messages so the in-flight gauge and quota slots
/// are always released — a dead client must not poison admission control.
fn writer_loop(mut stream: TcpStream, wrx: &Receiver<WriterMsg>, shared: &Arc<Shared>) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let stats = shared.service.stats_handle();
    let obs = shared.service.observer();
    let mut dead = false;
    for msg in wrx.iter() {
        let frame = match msg {
            WriterMsg::Immediate(frame) => frame,
            WriterMsg::Pending {
                request_id,
                client_key,
                rx,
            } => {
                let result = rx.recv().unwrap_or(Err(ServeError::ServiceStopped));
                let frame = match result {
                    Ok(resp) => {
                        // Attribute the shed *before* releasing the quota
                        // slot: a zero-outstanding entry is evictable from
                        // the bounded client table.
                        if resp.source.is_degraded() {
                            stats.client_shed(client_key);
                        }
                        Frame::Response(response_frame(request_id, &resp))
                    }
                    Err(e) => Frame::Error(ErrorFrame {
                        request_id,
                        code: error_code(&e),
                        message: e.to_string(),
                    }),
                };
                shared.inflight.fetch_sub(1, Ordering::AcqRel);
                stats.client_end(client_key);
                frame
            }
        };
        if !dead {
            // Respond-encode span: serialization only, not the socket write
            // (a slow peer is the peer's latency, not the server's).
            let t_encode = obs.enabled().then(Instant::now);
            let bytes = frame.encode();
            if let Some(t) = t_encode {
                obs.record_stage(Stage::RespondEncode, t.elapsed());
            }
            if std::io::Write::write_all(&mut stream, &bytes).is_err() {
                dead = true;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

/// Maps a served [`Response`] onto the wire. Point answers carry
/// `lo == hi == estimate`; bracket answers carry the monotone bounds, and
/// shed brackets additionally raise the degraded flag.
fn response_frame(request_id: u64, resp: &Response) -> ResponseFrame {
    let (lo, hi, source, batch, degraded) = match resp.source {
        EstimateSource::Computed { batch_size } => (
            resp.estimate,
            resp.estimate,
            WireSource::Computed,
            batch_size as u32,
            false,
        ),
        EstimateSource::Coalesced => (
            resp.estimate,
            resp.estimate,
            WireSource::Coalesced,
            0,
            false,
        ),
        EstimateSource::CacheExact => (
            resp.estimate,
            resp.estimate,
            WireSource::CacheExact,
            0,
            false,
        ),
        EstimateSource::CacheBounds { lo, hi } => (lo, hi, WireSource::CacheBounds, 0, false),
        EstimateSource::ShedBracket { lo, hi } => (lo, hi, WireSource::ShedBracket, 0, true),
    };
    ResponseFrame {
        request_id,
        epoch: resp.epoch,
        estimate: resp.estimate,
        lo,
        hi,
        source,
        batch,
        degraded,
    }
}

fn error_code(e: &ServeError) -> ErrorCode {
    match e {
        ServeError::UnknownModel(_) => ErrorCode::UnknownModel,
        ServeError::ServiceStopped => ErrorCode::ShuttingDown,
        ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        ServeError::Overloaded => ErrorCode::Overloaded,
    }
}

// ── Client ───────────────────────────────────────────────────────────────

/// A small blocking client for the wire protocol — what the loadgen, the
/// tests, and any non-Rust client's reference implementation look like.
/// Supports pipelining: [`NetClient::send`] any number of frames, then
/// [`NetClient::recv`] the answers in order.
pub struct NetClient {
    stream: TcpStream,
    dec: Decoder,
}

impl NetClient {
    pub fn connect(addr: SocketAddr) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            dec: Decoder::new(),
        })
    }

    /// The underlying stream (tests use it to inject raw/hostile bytes).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    pub fn send(&mut self, frame: &Frame) -> std::io::Result<()> {
        frame.write_to(&mut self.stream)
    }

    /// Blocks until the next complete frame arrives. Wire-level corruption
    /// surfaces as [`ErrorKind::InvalidData`]; a server-side close as
    /// [`ErrorKind::UnexpectedEof`].
    pub fn recv(&mut self) -> std::io::Result<Frame> {
        let mut buf = [0u8; 4096];
        loop {
            match self.dec.next_frame() {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(e) => return Err(wire_to_io(e)),
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-stream",
                ));
            }
            // `Read` guarantees n <= buf.len(); fall back to the whole
            // buffer rather than trusting that contract with a panic.
            self.dec.extend(buf.get(..n).unwrap_or(&buf));
        }
    }

    /// One request/response round trip.
    pub fn call(&mut self, req: RequestFrame) -> std::io::Result<Frame> {
        self.send(&Frame::Request(req))?;
        self.recv()
    }

    /// Liveness probe: sends a ping, expects the matching pong.
    pub fn ping(&mut self, token: u64) -> std::io::Result<bool> {
        self.send(&Frame::Ping(token))?;
        Ok(matches!(self.recv()?, Frame::Pong(t) if t == token))
    }

    /// Pulls the server's unified metrics snapshot over the wire as flat
    /// `(name, value)` counters (see [`crate::obs_export::wire_counters`]).
    pub fn stats(&mut self, token: u64) -> std::io::Result<StatsFrame> {
        self.send(&Frame::StatsRequest(token))?;
        match self.recv()? {
            Frame::Stats(s) if s.token == token => Ok(s),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("expected Stats({token}), got {other:?}"),
            )),
        }
    }

    /// Pulls up to `max` recent traces (slow-query log first, then sampled
    /// ring); `0` asks for the server's maximum.
    pub fn traces(&mut self, token: u64, max: u32) -> std::io::Result<TracesFrame> {
        self.send(&Frame::TraceRequest { token, max })?;
        match self.recv()? {
            Frame::Traces(t) if t.token == token => Ok(t),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("expected Traces({token}), got {other:?}"),
            )),
        }
    }
}

fn wire_to_io(e: WireError) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use crate::service::ServeConfig;
    use std::io::Write;

    /// A server with no models and no dataset: enough to exercise the
    /// protocol edge (ping, errors, limits) without training anything.
    fn empty_server(config: NetConfig) -> NetServer {
        let service = Service::start(Arc::new(ModelRegistry::new()), ServeConfig::default());
        NetServer::bind("127.0.0.1:0", service, Vec::new(), config).expect("bind loopback")
    }

    fn index_request(id: u64, idx: u64) -> RequestFrame {
        RequestFrame {
            request_id: id,
            client_id: 0,
            theta: 1.0,
            deadline_us: 0,
            model: String::new(),
            query: WireQuery::Index(idx),
        }
    }

    #[test]
    fn ping_pong_and_typed_errors_round_trip() {
        let server = empty_server(NetConfig::default());
        let mut client = NetClient::connect(server.addr()).expect("connect");
        assert!(client.ping(0xABCD).expect("pong"));
        // No dataset: any index is out of range.
        match client.call(index_request(1, 0)).expect("answered") {
            Frame::Error(e) => {
                assert_eq!(e.request_id, 1);
                assert_eq!(e.code, ErrorCode::BadQuery);
            }
            other => panic!("expected BadQuery, got {other:?}"),
        }
        // Inline query for a model that does not exist.
        let req = RequestFrame {
            request_id: 2,
            client_id: 0,
            theta: 1.0,
            deadline_us: 0,
            model: "ghost".into(),
            query: WireQuery::Bits(cardest_data::BitVec::from_u64(0b101, 8)),
        };
        match client.call(req).expect("answered") {
            Frame::Error(e) => {
                assert_eq!(e.request_id, 2);
                assert_eq!(e.code, ErrorCode::UnknownModel);
            }
            other => panic!("expected UnknownModel, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn connection_limit_refuses_with_a_typed_frame() {
        let server = empty_server(NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        });
        let mut first = NetClient::connect(server.addr()).expect("connect");
        assert!(first.ping(1).expect("first connection live"));
        let mut second = NetClient::connect(server.addr()).expect("tcp accepts");
        match second.recv().expect("refusal frame") {
            Frame::Error(e) => assert_eq!(e.code, ErrorCode::ConnLimit),
            other => panic!("expected ConnLimit, got {other:?}"),
        }
        assert!(second.recv().is_err(), "refused connection closes");
        // The first connection is unaffected.
        assert!(first.ping(2).expect("still live"));
        drop(first);
        server.shutdown();
    }

    #[test]
    fn stats_and_traces_pull_over_the_wire() {
        let server = empty_server(NetConfig::default());
        let mut client = NetClient::connect(server.addr()).expect("connect");
        assert!(client.ping(1).expect("pong"));
        let stats = client.stats(42).expect("stats frame");
        assert_eq!(stats.token, 42);
        // The stats request itself was counted before it was answered, and
        // the ping before it was too.
        assert!(stats.counter("cardest_ingress_frames_total").unwrap_or(0) >= 2);
        assert_eq!(stats.counter("cardest_requests_total"), Some(0));
        let traces = client.traces(7, 0).expect("traces frame");
        assert_eq!(traces.token, 7);
        assert!(traces.traces.is_empty(), "no requests served yet");
        server.shutdown();
    }

    #[test]
    fn garbage_bytes_poison_only_their_own_connection() {
        let server = empty_server(NetConfig::default());
        let mut victim = NetClient::connect(server.addr()).expect("connect");
        victim
            .stream()
            .write_all(&[0xFF; 64])
            .expect("write garbage");
        match victim.recv().expect("error frame before close") {
            Frame::Error(e) => assert_eq!(e.code, ErrorCode::Malformed),
            other => panic!("expected Malformed, got {other:?}"),
        }
        assert!(victim.recv().is_err(), "connection closes after corruption");
        // A fresh connection works fine.
        let mut ok = NetClient::connect(server.addr()).expect("connect");
        assert!(ok.ping(7).expect("server healthy"));
        server.shutdown();
    }
}
