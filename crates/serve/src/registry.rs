//! The model registry: named, `Arc`-wrapped estimators with epoch-tagged
//! hot-swap.
//!
//! Publishing is rare (a retrain completing); reading is the per-request hot
//! path. The registry therefore optimizes reads: every published model is an
//! immutable [`ServeModel`] behind an `Arc`, and a global `AtomicU64` epoch
//! is bumped on each publish. Workers hold a [`RegistryReader`] that caches
//! the `Arc`s it has resolved together with the epoch it observed — as long
//! as the epoch is unchanged, a read is **one atomic load plus a local
//! hash-map lookup, no lock**. Only when the epoch moved (someone published)
//! does the reader refresh its cache under the registry mutex.
//!
//! Because a swap replaces a whole `Arc` (never mutates a live model),
//! in-flight requests either see the old model or the new one in its
//! entirety — a half-written model is unrepresentable. Every estimate is
//! tagged with the epoch of the model that produced it, which doubles as the
//! cache-invalidation key: entries cached under an older epoch can never be
//! returned for a newer model.

use cardest_core::snapshot::{Snapshot, SnapshotError};
use cardest_core::{CardNetEstimator, CardinalityEstimator};
use cardest_fx::FeatureExtractor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::lockwitness::{self, TrackedLock};

/// An immutable published model: the unit of hot-swap.
pub struct ServeModel {
    /// Registry name this model was published under.
    pub name: String,
    /// Global publish counter at the time this model went live. Strictly
    /// increasing across the registry; tags every estimate and cache entry.
    pub epoch: u64,
    /// The trained estimator (extractor + model + weights).
    pub estimator: CardNetEstimator,
    /// Whether the estimator carries the monotonicity guarantee. Gates the
    /// cache's bound short-circuit: bracketing is only sound for monotone
    /// models.
    pub monotone: bool,
}

/// Named estimators with lock-free-read hot-swap.
pub struct ModelRegistry {
    models: Mutex<HashMap<String, Arc<ServeModel>>>,
    /// Bumped on every publish; readers revalidate their caches against it.
    epoch: AtomicU64,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    pub fn new() -> ModelRegistry {
        ModelRegistry {
            models: Mutex::new(HashMap::new()),
            epoch: AtomicU64::new(0),
        }
    }

    /// Publishes (or replaces) a model under `name`, returning the epoch the
    /// new model is tagged with. In-flight queries against the previous
    /// model finish on their own `Arc`; new lookups observe the swap.
    pub fn publish(&self, name: &str, estimator: CardNetEstimator) -> u64 {
        let monotone = estimator.is_monotonic();
        let _witness = lockwitness::acquire(TrackedLock::RegistryModels);
        let mut models = self.models.lock().expect("registry poisoned");
        // The epoch is bumped under the same lock that installs the model, so
        // a reader that observes the new epoch also observes the new Arc.
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        models.insert(
            name.to_string(),
            Arc::new(ServeModel {
                name: name.to_string(),
                epoch,
                estimator,
                monotone,
            }),
        );
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Validates a snapshot against the supplied extractor and publishes it —
    /// the safe path from a retrain ([`cardest_core::incremental`]) or a
    /// snapshot file to a live model. A snapshot whose decoder count, name,
    /// or dimensionality disagrees with the extractor is refused before it
    /// can serve a single query.
    pub fn publish_snapshot(
        &self,
        name: &str,
        snapshot: Snapshot,
        fx: Box<dyn FeatureExtractor>,
    ) -> Result<u64, SnapshotError> {
        let estimator = snapshot.into_estimator(fx)?;
        Ok(self.publish(name, estimator))
    }

    /// Current model for `name`, if any. Takes the registry lock briefly;
    /// hot paths should go through a [`RegistryReader`] instead.
    pub fn get(&self, name: &str) -> Option<Arc<ServeModel>> {
        let _witness = lockwitness::acquire(TrackedLock::RegistryModels);
        self.models
            .lock()
            .expect("registry poisoned")
            .get(name)
            .cloned()
    }

    /// The global publish counter.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub fn model_names(&self) -> Vec<String> {
        let _witness = lockwitness::acquire(TrackedLock::RegistryModels);
        let mut names: Vec<String> = self
            .models
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// A reader handle with its own epoch-validated cache (one per worker).
    pub fn reader(self: &Arc<Self>) -> RegistryReader {
        RegistryReader {
            registry: Arc::clone(self),
            seen_epoch: 0,
            cache: HashMap::new(),
        }
    }
}

/// A per-worker read handle: resolves names to models without locking as
/// long as nothing was published since the last resolution.
pub struct RegistryReader {
    registry: Arc<ModelRegistry>,
    seen_epoch: u64,
    cache: HashMap<String, Option<Arc<ServeModel>>>,
}

impl RegistryReader {
    /// Resolves `name`. Lock-free when the registry epoch is unchanged since
    /// the previous call; otherwise drops the stale cache and re-resolves
    /// under the registry lock.
    pub fn get(&mut self, name: &str) -> Option<Arc<ServeModel>> {
        let epoch = self.registry.epoch();
        if epoch != self.seen_epoch {
            self.cache.clear();
            self.seen_epoch = epoch;
        }
        if let Some(hit) = self.cache.get(name) {
            return hit.clone();
        }
        let resolved = self.registry.get(name);
        self.cache.insert(name.to_string(), resolved.clone());
        resolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_estimator;

    #[test]
    fn publish_bumps_epoch_and_tags_models() {
        let reg = Arc::new(ModelRegistry::new());
        assert_eq!(reg.epoch(), 0);
        assert!(reg.get("m").is_none());
        let e1 = reg.publish("m", tiny_estimator(1));
        assert_eq!(e1, 1);
        let m1 = reg.get("m").expect("published");
        assert_eq!(m1.epoch, 1);
        assert!(m1.monotone);
        let e2 = reg.publish("m", tiny_estimator(2));
        assert_eq!(e2, 2);
        assert_eq!(reg.get("m").expect("swapped").epoch, 2);
        // The old Arc stays valid for holders.
        assert_eq!(m1.epoch, 1);
        assert_eq!(reg.model_names(), vec!["m".to_string()]);
    }

    #[test]
    fn reader_tracks_hot_swap() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish("m", tiny_estimator(3));
        let mut reader = reg.reader();
        assert_eq!(reader.get("m").expect("resolved").epoch, 1);
        // Cached (lock-free) resolution returns the same Arc.
        let again = reader.get("m").expect("cached");
        assert_eq!(again.epoch, 1);
        // A publish invalidates the cache on the next read.
        reg.publish("m", tiny_estimator(4));
        assert_eq!(reader.get("m").expect("refreshed").epoch, 2);
        assert!(reader.get("absent").is_none());
    }
}
