//! Lock-free service counters: request totals, cache effectiveness, load
//! shedding, the micro-batch size distribution, and a log-bucketed latency
//! histogram from which p50/p99 are read without ever locking the hot path.
//!
//! The one exception to "lock-free" is the per-client quota table: client
//! identities arrive at the network edge, so the table is touched once per
//! ingress request (never by workers) and a short mutex there is fine —
//! admission control is exactly where backpressure is supposed to live. The
//! table is bounded at [`MAX_TRACKED_CLIENTS`] entries (client ids are an
//! attacker-chosen wire field), evicting idle entries at the cap.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::lockwitness::{self, TrackedLock};

/// Latency buckets: bucket `b` covers `[2^b, 2^{b+1})` nanoseconds. 48
/// buckets span 1 ns – ~3.2 days, which is every latency a service can see.
const LATENCY_BUCKETS: usize = 48;
/// Batch-size buckets: bucket `b` holds batches of `2^b ..= 2^{b+1} - 1`
/// requests (bucket 0 = singletons).
const BATCH_BUCKETS: usize = 12;
/// Hard cap on distinct client ids the quota table tracks. `client_id` is an
/// arbitrary attacker-chosen wire field, so the table must be bounded: at
/// the cap, a new id first evicts an idle (zero-outstanding) entry, and if
/// every tracked client has requests in flight the newcomer is refused as a
/// quota reject. Eviction loses only per-client attribution — the aggregate
/// counters live in the atomics and are never evicted.
pub const MAX_TRACKED_CLIENTS: usize = 4096;

/// Shared, atomically updated counters. One instance per [`crate::Service`];
/// workers and the response path update it, reporters snapshot it.
pub struct ServiceStats {
    /// Requests accepted (including ones answered from cache or failed).
    requests: AtomicU64,
    /// Answered from an exact `(epoch, fp, τ)` cache entry.
    exact_hits: AtomicU64,
    /// Answered from a tight monotone bracket without running the model.
    bound_hits: AtomicU64,
    /// Ran through the model (micro-batched).
    computed: AtomicU64,
    /// Answered by sharing another identical request's row in the same
    /// micro-batch.
    coalesced: AtomicU64,
    /// Failed (unknown model name).
    errors: AtomicU64,
    /// Load-shed but still answered: degraded monotone-bracket responses
    /// (admission control or expired deadline, no model run).
    shed_bracket: AtomicU64,
    /// Load-shed and refused: nothing cached to degrade onto.
    shed_rejected: AtomicU64,
    /// Refused at ingress because the client exceeded its quota.
    quota_rejected: AtomicU64,
    /// Micro-batches executed (model runs, not request groups).
    batches: AtomicU64,
    /// Sum of micro-batch sizes (mean batch = this / batches).
    batch_size_sum: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    latency_hist: [AtomicU64; LATENCY_BUCKETS],
    /// Bytes consumed off sockets as complete wire frames (all connections).
    ingress_bytes: AtomicU64,
    /// Wire frames decoded off sockets (all connections).
    ingress_frames: AtomicU64,
    /// Per-client accounting (requests, outstanding, shed, rejects), keyed
    /// by the wire protocol's client id. Touched only at the network edge.
    clients: Mutex<HashMap<u64, ClientStats>>,
}

/// Per-client counters behind the quota table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests this client presented at ingress (admitted or not).
    pub requests: u64,
    /// Requests currently in flight (admitted, not yet answered).
    pub outstanding: u64,
    /// Degraded (shed-bracket) answers this client received.
    pub shed: u64,
    /// Requests refused for exceeding the client's outstanding quota.
    pub quota_rejected: u64,
}

impl Default for ServiceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceStats {
    pub fn new() -> ServiceStats {
        ServiceStats {
            requests: AtomicU64::new(0),
            exact_hits: AtomicU64::new(0),
            bound_hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed_bracket: AtomicU64::new(0),
            shed_rejected: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_size_sum: AtomicU64::new(0),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            ingress_bytes: AtomicU64::new(0),
            ingress_frames: AtomicU64::new(0),
            clients: Mutex::new(HashMap::new()),
        }
    }

    /// Accumulates wire-ingress deltas from a connection reader: `bytes`
    /// consumed as complete frames and `frames` decoded. Readers report
    /// deltas (from [`crate::wire::Decoder`]'s counters) as they go, so the
    /// process totals stay live while connections are open.
    pub fn record_ingress(&self, bytes: u64, frames: u64) {
        if bytes > 0 {
            self.ingress_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        if frames > 0 {
            self.ingress_frames.fetch_add(frames, Ordering::Relaxed);
        }
    }

    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_exact_hit(&self) {
        self.exact_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_bound_hit(&self) {
        self.bound_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// One degraded answer from the monotone cache bracket.
    pub fn record_shed_bracket(&self) {
        self.shed_bracket.fetch_add(1, Ordering::Relaxed);
    }

    /// One hard shed (nothing cached to degrade onto).
    pub fn record_shed_reject(&self) {
        self.shed_rejected.fetch_add(1, Ordering::Relaxed);
    }

    // ── Per-client quota accounting (network-edge only) ──────────────────

    /// Registers an arriving request for `client_id` and admits it against
    /// `quota` (`0` = unlimited outstanding). On admission the client's
    /// outstanding count is incremented and must be released by
    /// [`ServiceStats::client_end`]; a refusal bumps the quota-reject
    /// counters instead.
    pub fn client_begin(&self, client_id: u64, quota: usize) -> bool {
        let _witness = lockwitness::acquire(TrackedLock::StatsClients);
        let mut table = self.clients.lock().expect("client table poisoned");
        // Bound the table before inserting a new id: random client ids must
        // not grow server memory without limit.
        if table.len() >= MAX_TRACKED_CLIENTS && !table.contains_key(&client_id) {
            let idle = table
                .iter()
                .find(|(_, c)| c.outstanding == 0)
                .map(|(&id, _)| id);
            match idle {
                Some(id) => {
                    table.remove(&id);
                }
                None => {
                    // Every tracked client is mid-flight (only possible when
                    // total in-flight ≥ the cap): refuse rather than grow.
                    drop(table);
                    self.quota_rejected.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        let entry = table.entry(client_id).or_default();
        entry.requests += 1;
        if quota > 0 && entry.outstanding >= quota as u64 {
            entry.quota_rejected += 1;
            drop(table);
            self.quota_rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        entry.outstanding += 1;
        true
    }

    /// Releases one admitted request for `client_id`.
    pub fn client_end(&self, client_id: u64) {
        let _witness = lockwitness::acquire(TrackedLock::StatsClients);
        let mut table = self.clients.lock().expect("client table poisoned");
        if let Some(entry) = table.get_mut(&client_id) {
            entry.outstanding = entry.outstanding.saturating_sub(1);
        }
    }

    /// Attributes one degraded answer to `client_id`. Only tracked clients
    /// are credited — inserting here would let shed attribution re-grow the
    /// bounded table past [`MAX_TRACKED_CLIENTS`].
    pub fn client_shed(&self, client_id: u64) {
        let _witness = lockwitness::acquire(TrackedLock::StatsClients);
        let mut table = self.clients.lock().expect("client table poisoned");
        if let Some(entry) = table.get_mut(&client_id) {
            entry.shed += 1;
        }
    }

    /// Point-in-time copy of one client's counters.
    pub fn client_stats(&self, client_id: u64) -> ClientStats {
        let _witness = lockwitness::acquire(TrackedLock::StatsClients);
        self.clients
            .lock()
            .expect("client table poisoned")
            .get(&client_id)
            .copied()
            .unwrap_or_default()
    }

    /// One model run over `size` stacked queries.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_size_sum
            .fetch_add(size as u64, Ordering::Relaxed);
        self.computed.fetch_add(size as u64, Ordering::Relaxed);
        let bucket = (usize::BITS - 1 - size.max(1).leading_zeros()) as usize;
        self.batch_hist[bucket.min(BATCH_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// End-to-end latency of one answered request (enqueue → response sent).
    pub fn record_latency(&self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros()) as usize;
        self.latency_hist[bucket.min(LATENCY_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy for reporting (individual counters are read
    /// relaxed; exactness across counters is not needed for monitoring).
    pub fn snapshot(&self) -> StatsSnapshot {
        let latency: Vec<u64> = self
            .latency_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let _witness = lockwitness::acquire(TrackedLock::StatsClients);
        let mut clients: Vec<(u64, ClientStats)> = self
            .clients
            .lock()
            .expect("client table poisoned")
            .iter()
            .map(|(&id, &c)| (id, c))
            .collect();
        clients.sort_by_key(|&(id, _)| id);
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            bound_hits: self.bound_hits.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed_bracket: self.shed_bracket.load(Ordering::Relaxed),
            shed_rejected: self.shed_rejected.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            clients,
            batches: self.batches.load(Ordering::Relaxed),
            batch_size_sum: self.batch_size_sum.load(Ordering::Relaxed),
            batch_hist: self
                .batch_hist
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            latency_hist: latency,
            ingress_bytes: self.ingress_bytes.load(Ordering::Relaxed),
            ingress_frames: self.ingress_frames.load(Ordering::Relaxed),
        }
    }
}

/// Geometric midpoint of latency bucket `b`, i.e. of `[2^b, 2^{b+1})` ns:
/// `2^b · √2`. Every quantile read — including the saturated top bucket —
/// reports this midpoint, so quantiles stay mutually consistent.
fn bucket_geometric_midpoint(b: usize) -> Duration {
    Duration::from_nanos((2f64.powi(b as i32) * std::f64::consts::SQRT_2).round() as u64)
}

/// A point-in-time copy of [`ServiceStats`] with derived rates/quantiles.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub exact_hits: u64,
    pub bound_hits: u64,
    pub computed: u64,
    pub coalesced: u64,
    pub errors: u64,
    /// Degraded monotone-bracket answers (load shed, still answered).
    pub shed_bracket: u64,
    /// Hard sheds (refused: no cached bracket to degrade onto).
    pub shed_rejected: u64,
    /// Requests refused for exceeding a per-client quota.
    pub quota_rejected: u64,
    /// Per-client counters, sorted by client id.
    pub clients: Vec<(u64, ClientStats)>,
    pub batches: u64,
    pub batch_size_sum: u64,
    /// Count of micro-batches whose size fell in `[2^b, 2^{b+1})`.
    pub batch_hist: Vec<u64>,
    /// Count of requests whose latency fell in `[2^b, 2^{b+1})` ns.
    pub latency_hist: Vec<u64>,
    /// Bytes consumed off sockets as complete wire frames.
    pub ingress_bytes: u64,
    /// Wire frames decoded off sockets.
    pub ingress_frames: u64,
}

impl StatsSnapshot {
    /// Successfully answered requests, across every response source
    /// (degraded shed-bracket answers included — the client got bounds).
    pub fn answered(&self) -> u64 {
        self.exact_hits + self.bound_hits + self.coalesced + self.computed + self.shed_bracket
    }

    /// Fraction of ingress traffic that was load-shed (degraded answers
    /// plus hard rejects) — the saturation signal an operator watches.
    pub fn shed_rate(&self) -> f64 {
        let shed = self.shed_bracket + self.shed_rejected;
        if self.requests == 0 {
            return 0.0;
        }
        shed as f64 / self.requests as f64
    }

    /// Fraction of answered requests served from cache (exact or bounds).
    pub fn hit_rate(&self) -> f64 {
        if self.answered() == 0 {
            return 0.0;
        }
        (self.exact_hits + self.bound_hits) as f64 / self.answered() as f64
    }

    pub fn bound_hit_rate(&self) -> f64 {
        if self.answered() == 0 {
            return 0.0;
        }
        self.bound_hits as f64 / self.answered() as f64
    }

    /// Fraction of answered requests that avoided a model row entirely
    /// (cache hits plus intra-batch coalescing).
    pub fn saved_rate(&self) -> f64 {
        if self.answered() == 0 {
            return 0.0;
        }
        (self.exact_hits + self.bound_hits + self.coalesced) as f64 / self.answered() as f64
    }

    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batch_size_sum as f64 / self.batches as f64
    }

    /// Approximate latency quantile (`q` in `[0, 1]`) from the log-bucketed
    /// histogram: the geometric midpoint of the bucket holding the q-th
    /// request. Buckets cover `[2^b, 2^{b+1})`, so the resolution is a
    /// factor of 2 (each reported value is within √2 of the true one) —
    /// plenty for p50/p99 reporting.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &count) in self.latency_hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return bucket_geometric_midpoint(b);
            }
        }
        // Unreachable (the counts sum to `total`), but stay consistent with
        // the per-bucket midpoint convention rather than returning the
        // saturated bucket's *edge*.
        bucket_geometric_midpoint(self.latency_hist.len() - 1)
    }

    /// `(size-range label, count)` rows for the non-empty batch buckets.
    pub fn batch_histogram_rows(&self) -> Vec<(String, u64)> {
        self.batch_hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let lo = 1u64 << b;
                let hi = (1u64 << (b + 1)) - 1;
                let label = if lo == hi {
                    format!("{lo}")
                } else {
                    format!("{lo}-{hi}")
                };
                (label, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = ServiceStats::new();
        for _ in 0..10 {
            stats.record_request();
        }
        stats.record_exact_hit();
        stats.record_exact_hit();
        stats.record_bound_hit();
        stats.record_batch(7);
        stats.record_batch(1);
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 10);
        assert_eq!(snap.exact_hits, 2);
        assert_eq!(snap.bound_hits, 1);
        assert_eq!(snap.computed, 8);
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_size() - 4.0).abs() < 1e-12);
        // 2 exact + 1 bound out of 11 answered.
        assert!((snap.hit_rate() - 3.0 / 11.0).abs() < 1e-12);
        assert!((snap.saved_rate() - 3.0 / 11.0).abs() < 1e-12);
        let rows = snap.batch_histogram_rows();
        assert_eq!(rows.len(), 2); // bucket "1" and bucket "4-7"
        assert_eq!(rows[0], ("1".to_string(), 1));
        assert_eq!(rows[1], ("4-7".to_string(), 1));
    }

    #[test]
    fn shed_counters_and_quota_table_reconcile() {
        let stats = ServiceStats::new();
        // Client 7 has quota 2: two admissions, then rejects until released.
        assert!(stats.client_begin(7, 2));
        assert!(stats.client_begin(7, 2));
        assert!(!stats.client_begin(7, 2));
        assert!(!stats.client_begin(7, 2));
        stats.client_end(7);
        assert!(stats.client_begin(7, 2));
        // Client 8 is unlimited (quota 0).
        for _ in 0..5 {
            assert!(stats.client_begin(8, 0));
        }
        stats.record_shed_bracket();
        stats.record_shed_bracket();
        stats.client_shed(7);
        stats.record_shed_reject();
        for _ in 0..10 {
            stats.record_request();
        }
        let snap = stats.snapshot();
        assert_eq!(snap.shed_bracket, 2);
        assert_eq!(snap.shed_rejected, 1);
        assert_eq!(snap.quota_rejected, 2);
        assert!((snap.shed_rate() - 0.3).abs() < 1e-12);
        // Degraded answers count as answered.
        assert_eq!(snap.answered(), 2);
        let c7 = stats.client_stats(7);
        assert_eq!(c7.requests, 5);
        assert_eq!(c7.outstanding, 2);
        assert_eq!(c7.quota_rejected, 2);
        assert_eq!(c7.shed, 1);
        let c8 = stats.client_stats(8);
        assert_eq!((c8.requests, c8.outstanding), (5, 5));
        assert_eq!(stats.client_stats(99), ClientStats::default());
        let ids: Vec<u64> = snap.clients.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![7, 8], "snapshot sorted by client id");
    }

    #[test]
    fn quota_table_stays_bounded_under_random_client_ids() {
        let stats = ServiceStats::new();
        // A hostile client presenting a fresh id per request: every request
        // is admitted (its predecessor is idle and gets evicted) but the
        // table never grows past the cap.
        for id in 0..(MAX_TRACKED_CLIENTS as u64 + 500) {
            assert!(stats.client_begin(id, 4));
            stats.client_end(id);
        }
        let snap = stats.snapshot();
        assert!(snap.clients.len() <= MAX_TRACKED_CLIENTS);
        assert_eq!(snap.quota_rejected, 0);
        // Shed attribution for an evicted (untracked) id must not re-insert.
        stats.client_shed(0);
        assert!(stats.snapshot().clients.len() <= MAX_TRACKED_CLIENTS);
    }

    #[test]
    fn full_quota_table_of_inflight_clients_refuses_newcomers() {
        let stats = ServiceStats::new();
        for id in 0..MAX_TRACKED_CLIENTS as u64 {
            assert!(stats.client_begin(id, 0));
        }
        // Every tracked client is mid-flight: a newcomer is refused, counted
        // as a quota reject, and the table does not grow.
        assert!(!stats.client_begin(u64::MAX, 0));
        let snap = stats.snapshot();
        assert_eq!(snap.clients.len(), MAX_TRACKED_CLIENTS);
        assert_eq!(snap.quota_rejected, 1);
        // Releasing one slot readmits new ids.
        stats.client_end(3);
        assert!(stats.client_begin(u64::MAX, 0));
        assert_eq!(stats.snapshot().clients.len(), MAX_TRACKED_CLIENTS);
    }

    #[test]
    fn latency_quantiles_are_ordered() {
        let stats = ServiceStats::new();
        for us in [1u64, 10, 10, 10, 10, 100, 100, 1000, 10_000] {
            stats.record_latency(Duration::from_micros(us));
        }
        // An absurd latency lands in (and saturates into) the top bucket.
        let huge = Duration::from_secs(400_000); // ~4.6 days > 2^47 ns
        stats.record_latency(huge);
        let snap = stats.snapshot();
        let p50 = snap.latency_quantile(0.50);
        let p99 = snap.latency_quantile(0.99);
        let p100 = snap.latency_quantile(1.0);
        assert!(p50 <= p99, "{p50:?} > {p99:?}");
        assert!(p99 <= p100, "{p99:?} > {p100:?}");
        assert!(p50 >= Duration::from_micros(5) && p50 <= Duration::from_micros(20));
        // The overflow bucket reports its geometric midpoint — the same
        // convention as every other bucket — not the bucket edge.
        let top = LATENCY_BUCKETS - 1;
        let expected =
            Duration::from_nanos((2f64.powi(top as i32) * std::f64::consts::SQRT_2).round() as u64);
        assert_eq!(p100, expected);
        assert!(p100 >= Duration::from_nanos(1 << top));
        assert!(p100 < Duration::from_nanos(1 << (top + 1)));
        assert_eq!(
            StatsSnapshot::default_zero().latency_quantile(0.5),
            Duration::ZERO
        );
    }

    impl StatsSnapshot {
        fn default_zero() -> StatsSnapshot {
            ServiceStats::new().snapshot()
        }
    }
}
