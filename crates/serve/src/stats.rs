//! Lock-free service counters: request totals, cache effectiveness, the
//! micro-batch size distribution, and a log-bucketed latency histogram from
//! which p50/p99 are read without ever locking the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Latency buckets: bucket `b` covers `[2^b, 2^{b+1})` nanoseconds. 48
/// buckets span 1 ns – ~3.2 days, which is every latency a service can see.
const LATENCY_BUCKETS: usize = 48;
/// Batch-size buckets: bucket `b` holds batches of `2^b ..= 2^{b+1} - 1`
/// requests (bucket 0 = singletons).
const BATCH_BUCKETS: usize = 12;

/// Shared, atomically updated counters. One instance per [`crate::Service`];
/// workers and the response path update it, reporters snapshot it.
pub struct ServiceStats {
    /// Requests accepted (including ones answered from cache or failed).
    requests: AtomicU64,
    /// Answered from an exact `(epoch, fp, τ)` cache entry.
    exact_hits: AtomicU64,
    /// Answered from a tight monotone bracket without running the model.
    bound_hits: AtomicU64,
    /// Ran through the model (micro-batched).
    computed: AtomicU64,
    /// Answered by sharing another identical request's row in the same
    /// micro-batch.
    coalesced: AtomicU64,
    /// Failed (unknown model name).
    errors: AtomicU64,
    /// Micro-batches executed (model runs, not request groups).
    batches: AtomicU64,
    /// Sum of micro-batch sizes (mean batch = this / batches).
    batch_size_sum: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    latency_hist: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for ServiceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceStats {
    pub fn new() -> ServiceStats {
        ServiceStats {
            requests: AtomicU64::new(0),
            exact_hits: AtomicU64::new(0),
            bound_hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_size_sum: AtomicU64::new(0),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_exact_hit(&self) {
        self.exact_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_bound_hit(&self) {
        self.bound_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// One model run over `size` stacked queries.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_size_sum
            .fetch_add(size as u64, Ordering::Relaxed);
        self.computed.fetch_add(size as u64, Ordering::Relaxed);
        let bucket = (usize::BITS - 1 - size.max(1).leading_zeros()) as usize;
        self.batch_hist[bucket.min(BATCH_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// End-to-end latency of one answered request (enqueue → response sent).
    pub fn record_latency(&self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros()) as usize;
        self.latency_hist[bucket.min(LATENCY_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy for reporting (individual counters are read
    /// relaxed; exactness across counters is not needed for monitoring).
    pub fn snapshot(&self) -> StatsSnapshot {
        let latency: Vec<u64> = self
            .latency_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            bound_hits: self.bound_hits.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_size_sum: self.batch_size_sum.load(Ordering::Relaxed),
            batch_hist: self
                .batch_hist
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            latency_hist: latency,
        }
    }
}

/// Geometric midpoint of latency bucket `b`, i.e. of `[2^b, 2^{b+1})` ns:
/// `2^b · √2`. Every quantile read — including the saturated top bucket —
/// reports this midpoint, so quantiles stay mutually consistent.
fn bucket_geometric_midpoint(b: usize) -> Duration {
    Duration::from_nanos((2f64.powi(b as i32) * std::f64::consts::SQRT_2).round() as u64)
}

/// A point-in-time copy of [`ServiceStats`] with derived rates/quantiles.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub exact_hits: u64,
    pub bound_hits: u64,
    pub computed: u64,
    pub coalesced: u64,
    pub errors: u64,
    pub batches: u64,
    pub batch_size_sum: u64,
    /// Count of micro-batches whose size fell in `[2^b, 2^{b+1})`.
    pub batch_hist: Vec<u64>,
    /// Count of requests whose latency fell in `[2^b, 2^{b+1})` ns.
    pub latency_hist: Vec<u64>,
}

impl StatsSnapshot {
    /// Successfully answered requests, across every response source.
    pub fn answered(&self) -> u64 {
        self.exact_hits + self.bound_hits + self.coalesced + self.computed
    }

    /// Fraction of answered requests served from cache (exact or bounds).
    pub fn hit_rate(&self) -> f64 {
        if self.answered() == 0 {
            return 0.0;
        }
        (self.exact_hits + self.bound_hits) as f64 / self.answered() as f64
    }

    pub fn bound_hit_rate(&self) -> f64 {
        if self.answered() == 0 {
            return 0.0;
        }
        self.bound_hits as f64 / self.answered() as f64
    }

    /// Fraction of answered requests that avoided a model row entirely
    /// (cache hits plus intra-batch coalescing).
    pub fn saved_rate(&self) -> f64 {
        if self.answered() == 0 {
            return 0.0;
        }
        (self.exact_hits + self.bound_hits + self.coalesced) as f64 / self.answered() as f64
    }

    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batch_size_sum as f64 / self.batches as f64
    }

    /// Approximate latency quantile (`q` in `[0, 1]`) from the log-bucketed
    /// histogram: the geometric midpoint of the bucket holding the q-th
    /// request. Buckets cover `[2^b, 2^{b+1})`, so the resolution is a
    /// factor of 2 (each reported value is within √2 of the true one) —
    /// plenty for p50/p99 reporting.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &count) in self.latency_hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return bucket_geometric_midpoint(b);
            }
        }
        // Unreachable (the counts sum to `total`), but stay consistent with
        // the per-bucket midpoint convention rather than returning the
        // saturated bucket's *edge*.
        bucket_geometric_midpoint(self.latency_hist.len() - 1)
    }

    /// `(size-range label, count)` rows for the non-empty batch buckets.
    pub fn batch_histogram_rows(&self) -> Vec<(String, u64)> {
        self.batch_hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let lo = 1u64 << b;
                let hi = (1u64 << (b + 1)) - 1;
                let label = if lo == hi {
                    format!("{lo}")
                } else {
                    format!("{lo}-{hi}")
                };
                (label, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = ServiceStats::new();
        for _ in 0..10 {
            stats.record_request();
        }
        stats.record_exact_hit();
        stats.record_exact_hit();
        stats.record_bound_hit();
        stats.record_batch(7);
        stats.record_batch(1);
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 10);
        assert_eq!(snap.exact_hits, 2);
        assert_eq!(snap.bound_hits, 1);
        assert_eq!(snap.computed, 8);
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_size() - 4.0).abs() < 1e-12);
        // 2 exact + 1 bound out of 11 answered.
        assert!((snap.hit_rate() - 3.0 / 11.0).abs() < 1e-12);
        assert!((snap.saved_rate() - 3.0 / 11.0).abs() < 1e-12);
        let rows = snap.batch_histogram_rows();
        assert_eq!(rows.len(), 2); // bucket "1" and bucket "4-7"
        assert_eq!(rows[0], ("1".to_string(), 1));
        assert_eq!(rows[1], ("4-7".to_string(), 1));
    }

    #[test]
    fn latency_quantiles_are_ordered() {
        let stats = ServiceStats::new();
        for us in [1u64, 10, 10, 10, 10, 100, 100, 1000, 10_000] {
            stats.record_latency(Duration::from_micros(us));
        }
        // An absurd latency lands in (and saturates into) the top bucket.
        let huge = Duration::from_secs(400_000); // ~4.6 days > 2^47 ns
        stats.record_latency(huge);
        let snap = stats.snapshot();
        let p50 = snap.latency_quantile(0.50);
        let p99 = snap.latency_quantile(0.99);
        let p100 = snap.latency_quantile(1.0);
        assert!(p50 <= p99, "{p50:?} > {p99:?}");
        assert!(p99 <= p100, "{p99:?} > {p100:?}");
        assert!(p50 >= Duration::from_micros(5) && p50 <= Duration::from_micros(20));
        // The overflow bucket reports its geometric midpoint — the same
        // convention as every other bucket — not the bucket edge.
        let top = LATENCY_BUCKETS - 1;
        let expected =
            Duration::from_nanos((2f64.powi(top as i32) * std::f64::consts::SQRT_2).round() as u64);
        assert_eq!(p100, expected);
        assert!(p100 >= Duration::from_nanos(1 << top));
        assert!(p100 < Duration::from_nanos(1 << (top + 1)));
        assert_eq!(
            StatsSnapshot::default_zero().latency_quantile(0.5),
            Duration::ZERO
        );
    }

    impl StatsSnapshot {
        fn default_zero() -> StatsSnapshot {
            ServiceStats::new().snapshot()
        }
    }
}
