//! A sharded LRU cache over `(model epoch, query fingerprint, τ)` that
//! understands monotonicity.
//!
//! An estimate depends on the query only through its extracted bit vector and
//! on θ only through the transformed threshold `τ = h_thr(θ)` — so the cache
//! key is `(epoch, fingerprint(bits), τ)` and every θ that lands in the same
//! τ-bucket shares an entry. The epoch (from [`crate::registry`]) makes
//! entries written under an older model unreachable after a hot-swap without
//! any explicit invalidation: they simply age out of the LRU.
//!
//! **The monotone-bound trick.** For a monotone estimator, `ĉ(τ)` is
//! non-decreasing in τ. If a lookup at τ misses but the same `(epoch, fp)`
//! has cached neighbors τ₁ < τ < τ₂, then `ĉ(τ₁) ≤ ĉ(τ) ≤ ĉ(τ₂)`: the cache
//! returns that interval as [`CacheLookup::Bounds`]. A non-monotone estimator
//! could not offer this — neighboring entries would say nothing about the
//! value in between. The serving layer short-circuits when the bracket is
//! tight (degenerate brackets `lo == hi` pin the value *exactly*, so even a
//! zero-tolerance service benefits).

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use crate::lockwitness::{self, TrackedLock};

/// Outcome of a cache probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CacheLookup {
    /// The exact `(epoch, fp, τ)` entry was present.
    Exact(f64),
    /// No exact entry, but cached neighbors bracket τ: by monotonicity the
    /// true estimate lies in `[lo, hi]`.
    Bounds {
        lo: f64,
        hi: f64,
    },
    Miss,
}

const NIL: usize = usize::MAX;
/// Shard count (power of two; a handful of shards is plenty to keep a
/// worker pool of ≤ ~32 threads from contending on one mutex).
const N_SHARDS: usize = 16;

type Key = (u64, u64, usize); // (model epoch, query fingerprint, τ)

struct Node {
    key: Key,
    value: f64,
    prev: usize,
    next: usize,
}

/// One LRU shard: an intrusive doubly-linked recency list over a slab, plus
/// a per-`(epoch, fp)` ordered τ-index for exact and bracket probes.
struct Shard {
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    /// `(epoch, fp)` → τ → slab index. `BTreeMap` gives the bracket probe
    /// (`range(..τ).next_back()` / `range(τ+1..).next()`) in `O(log k)`.
    index: HashMap<(u64, u64), BTreeMap<usize, usize>>,
    len: usize,
    capacity: usize,
}

enum Probe {
    Exact(usize),
    Bracket(usize, usize),
    Miss,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            index: HashMap::new(),
            len: 0,
            capacity,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.detach(idx);
            self.push_front(idx);
        }
    }

    fn probe(&self, epoch: u64, fp: u64, tau: usize) -> Probe {
        let Some(taus) = self.index.get(&(epoch, fp)) else {
            return Probe::Miss;
        };
        if let Some(&idx) = taus.get(&tau) {
            return Probe::Exact(idx);
        }
        let below = taus.range(..tau).next_back().map(|(_, &i)| i);
        let above = taus.range(tau + 1..).next().map(|(_, &i)| i);
        match (below, above) {
            (Some(lo), Some(hi)) => Probe::Bracket(lo, hi),
            _ => Probe::Miss,
        }
    }

    fn lookup(&mut self, epoch: u64, fp: u64, tau: usize) -> CacheLookup {
        match self.probe(epoch, fp, tau) {
            Probe::Exact(idx) => {
                let v = self.nodes[idx].value;
                self.touch(idx);
                CacheLookup::Exact(v)
            }
            Probe::Bracket(lo_idx, hi_idx) => {
                let (lo, hi) = (self.nodes[lo_idx].value, self.nodes[hi_idx].value);
                self.touch(lo_idx);
                self.touch(hi_idx);
                CacheLookup::Bounds { lo, hi }
            }
            Probe::Miss => CacheLookup::Miss,
        }
    }

    fn insert(&mut self, epoch: u64, fp: u64, tau: usize, value: f64) {
        if self.capacity == 0 {
            // Disabled shard: never allocate a node just to evict it.
            return;
        }
        if let Some(&idx) = self.index.get(&(epoch, fp)).and_then(|t| t.get(&tau)) {
            // Re-computation under the same epoch is deterministic, so the
            // value cannot actually change — but refresh recency regardless.
            self.nodes[idx].value = value;
            self.touch(idx);
            return;
        }
        let node = Node {
            key: (epoch, fp, tau),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.index.entry((epoch, fp)).or_default().insert(tau, idx);
        self.len += 1;
        while self.len > self.capacity {
            self.evict_tail();
        }
    }

    fn evict_tail(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict on empty shard");
        self.detach(idx);
        let (epoch, fp, tau) = self.nodes[idx].key;
        if let Some(taus) = self.index.get_mut(&(epoch, fp)) {
            taus.remove(&tau);
            if taus.is_empty() {
                self.index.remove(&(epoch, fp));
            }
        }
        self.free.push(idx);
        self.len -= 1;
    }
}

/// The sharded cache. A `capacity` of 0 disables it entirely (every lookup
/// misses without even touching a shard lock, every insert is dropped) —
/// useful for apples-to-apples compute benchmarks.
pub struct EstimateCache {
    shards: Vec<Mutex<Shard>>,
    /// `capacity > 0`, hoisted out of the shards so the disabled cache costs
    /// one branch on the hot path, not a mutex acquisition.
    enabled: bool,
}

impl EstimateCache {
    /// Total capacity, split evenly across shards (rounded up per shard).
    pub fn new(capacity: usize) -> EstimateCache {
        let per_shard = capacity.div_ceil(N_SHARDS);
        EstimateCache {
            shards: (0..N_SHARDS)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            enabled: capacity > 0,
        }
    }

    fn shard(&self, epoch: u64, fp: u64) -> &Mutex<Shard> {
        // fp is already a hash; fold the epoch in so successive model
        // generations spread across shards too.
        let h = fp ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h as usize) & (N_SHARDS - 1)]
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn lookup(&self, epoch: u64, fp: u64, tau: usize) -> CacheLookup {
        if !self.enabled {
            return CacheLookup::Miss;
        }
        let _witness = lockwitness::acquire(TrackedLock::CacheShard);
        self.shard(epoch, fp)
            .lock()
            .expect("cache poisoned")
            .lookup(epoch, fp, tau)
    }

    pub fn insert(&self, epoch: u64, fp: u64, tau: usize, value: f64) {
        if !self.enabled {
            return;
        }
        let _witness = lockwitness::acquire(TrackedLock::CacheShard);
        self.shard(epoch, fp)
            .lock()
            .expect("cache poisoned")
            .insert(epoch, fp, tau, value);
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let _witness = lockwitness::acquire(TrackedLock::CacheShard);
                s.lock().expect("cache poisoned").len
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live `(epoch, fp)` groups in the τ-indexes across all
    /// shards. Every group holds at least one entry — eviction removes
    /// emptied groups — so this never exceeds [`EstimateCache::len`]; it is
    /// the invariant that keeps hot-swap churn (a new epoch per publish)
    /// from accumulating empty index maps.
    pub fn index_groups(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let _witness = lockwitness::acquire(TrackedLock::CacheShard);
                s.lock().expect("cache poisoned").index.len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_hit_roundtrip() {
        let cache = EstimateCache::new(64);
        assert_eq!(cache.lookup(1, 42, 3), CacheLookup::Miss);
        cache.insert(1, 42, 3, 17.5);
        assert_eq!(cache.lookup(1, 42, 3), CacheLookup::Exact(17.5));
        // A different epoch never sees the entry (hot-swap isolation).
        assert_eq!(cache.lookup(2, 42, 3), CacheLookup::Miss);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn bracket_returns_monotone_bounds() {
        let cache = EstimateCache::new(64);
        cache.insert(1, 7, 2, 10.0);
        cache.insert(1, 7, 8, 40.0);
        match cache.lookup(1, 7, 5) {
            CacheLookup::Bounds { lo, hi } => {
                assert_eq!(lo, 10.0);
                assert_eq!(hi, 40.0);
            }
            other => panic!("expected bounds, got {other:?}"),
        }
        // One-sided neighbors are not a bracket: monotonicity gives only a
        // lower (or upper) bound, which cannot short-circuit.
        assert_eq!(cache.lookup(1, 7, 9), CacheLookup::Miss);
        assert_eq!(cache.lookup(1, 7, 1), CacheLookup::Miss);
        // Nearest neighbors win over distant ones.
        cache.insert(1, 7, 4, 20.0);
        match cache.lookup(1, 7, 5) {
            CacheLookup::Bounds { lo, hi } => {
                assert_eq!(lo, 20.0);
                assert_eq!(hi, 40.0);
            }
            other => panic!("expected tighter bounds, got {other:?}"),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single-key-space shard behavior: same (epoch, fp) keeps all
        // entries in one shard, so per-shard capacity is what's exercised.
        let cache = EstimateCache::new(0); // capacity 0 => disabled
        cache.insert(1, 1, 1, 5.0);
        assert_eq!(cache.lookup(1, 1, 1), CacheLookup::Miss);
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());

        let cache = EstimateCache::new(3 * N_SHARDS); // 3 per shard
        for tau in 0..3 {
            cache.insert(1, 9, tau, tau as f64);
        }
        // Touch τ=0 so τ=1 becomes the LRU victim.
        assert_eq!(cache.lookup(1, 9, 0), CacheLookup::Exact(0.0));
        cache.insert(1, 9, 10, 99.0);
        // τ=1 was evicted: no longer exact (its surviving neighbors now
        // answer with a monotone bracket instead).
        assert_eq!(
            cache.lookup(1, 9, 1),
            CacheLookup::Bounds { lo: 0.0, hi: 2.0 }
        );
        assert_eq!(cache.lookup(1, 9, 0), CacheLookup::Exact(0.0));
        assert_eq!(cache.lookup(1, 9, 2), CacheLookup::Exact(2.0));
        assert_eq!(cache.lookup(1, 9, 10), CacheLookup::Exact(99.0));
    }

    #[test]
    fn eviction_prunes_bracket_index() {
        let cache = EstimateCache::new(2 * N_SHARDS); // 2 per shard
        cache.insert(1, 5, 1, 1.0);
        cache.insert(1, 5, 9, 9.0);
        assert!(matches!(cache.lookup(1, 5, 4), CacheLookup::Bounds { .. }));
        // Two more inserts evict both original entries (bracket touch
        // refreshed them, so insert order decides: τ=1 and τ=9 were both
        // touched by the bracket probe; pushing two new keys evicts the two
        // oldest among the four).
        cache.insert(1, 5, 2, 2.0);
        cache.insert(1, 5, 3, 3.0);
        assert_eq!(cache.len(), 2);
        // Whatever survived, probing never dangles.
        for tau in 0..12 {
            let _ = cache.lookup(1, 5, tau);
        }
    }

    #[test]
    fn zero_capacity_inserts_allocate_nothing() {
        // The documented "disable" mode must be free: no node allocation,
        // no linking, no immediate eviction — and no shard-index entries.
        let cache = EstimateCache::new(0);
        for fp in 0..100 {
            cache.insert(1, fp, 3, fp as f64);
        }
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.index_groups(), 0);
        assert!(!cache.is_enabled());
        assert_eq!(cache.lookup(1, 0, 3), CacheLookup::Miss);
        // Defense in depth: even a direct shard insert at capacity 0 is a
        // no-op (no alloc-then-evict churn).
        let mut shard = Shard::new(0);
        shard.insert(1, 1, 1, 1.0);
        assert_eq!(shard.len, 0);
        assert!(shard.nodes.is_empty(), "no node may be allocated");
        assert!(shard.index.is_empty());
    }

    #[test]
    fn eviction_removes_emptied_index_groups_under_epoch_churn() {
        // Hot-swap churn: every publish bumps the epoch, so old (epoch, fp)
        // groups stop being hit and age out. If eviction left emptied
        // BTreeMaps behind, `index` would grow without bound; instead every
        // live group holds ≥ 1 entry, so groups ≤ entries always.
        let capacity = 2 * N_SHARDS;
        let cache = EstimateCache::new(capacity);
        for epoch in 0..200u64 {
            for fp in 0..3u64 {
                cache.insert(epoch, fp, (epoch % 7) as usize, epoch as f64);
            }
        }
        assert!(cache.len() <= capacity, "LRU bound violated");
        assert!(
            cache.index_groups() <= cache.len(),
            "emptied (epoch, fp) groups leaked: {} groups for {} entries",
            cache.index_groups(),
            cache.len()
        );
        // Distinct (epoch, fp, τ) keys ⇒ exactly one entry per group here.
        assert_eq!(cache.index_groups(), cache.len());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = EstimateCache::new(16);
        cache.insert(3, 3, 3, 1.0);
        cache.insert(3, 3, 3, 2.0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(3, 3, 3), CacheLookup::Exact(2.0));
    }
}
