//! Minimal std-only HTTP exposition endpoint for metrics scrapes.
//!
//! This is deliberately *not* a web framework: it answers exactly three
//! `GET` routes over HTTP/1.0-style request/response pairs (connection
//! closed after each response), which is all a Prometheus scraper or a
//! `curl` in a CI smoke test needs:
//!
//! * `/metrics`     — Prometheus text exposition format 0.0.4.
//! * `/stats.json`  — the same unified snapshot as JSON (counters, gauges,
//!   histogram summaries).
//! * `/traces.json` — the slow-query log and the sampled-trace ring with
//!   full per-stage breakdowns.
//!
//! The accept loop runs on one thread and serves requests inline: scrapes
//! are rare (seconds apart) and responses are small, so there is nothing to
//! pipeline. The socket ingress ([`crate::net`]) stays completely separate —
//! a stuck scraper can never block query traffic.

use crate::obs_export;
use crate::stats::ServiceStats;
use cardest_obs::{json_str, Observer, Trace, STAGES};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps between polls when idle.
const ACCEPT_TICK: Duration = Duration::from_millis(10);
/// Per-request socket timeout: a scraper that stalls mid-request is dropped
/// rather than holding the (single) serving thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Largest request head we will buffer before answering 400.
const MAX_REQUEST_BYTES: usize = 4096;
/// Most traces returned per section of `/traces.json`.
const MAX_HTTP_TRACES: usize = 64;

/// A running metrics endpoint; dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop and joins the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9188"`; port 0 picks a free port) and
    /// starts answering scrapes against the given live stats + observer.
    pub fn bind(
        addr: &str,
        stats: Arc<ServiceStats>,
        obs: Arc<Observer>,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_loop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((conn, _)) => {
                    let _ = serve_one(conn, &stats, &obs);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if stop_loop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(_) => {
                    if stop_loop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(ACCEPT_TICK);
                }
            }
        });
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn serve_one(mut conn: TcpStream, stats: &ServiceStats, obs: &Observer) -> io::Result<()> {
    conn.set_read_timeout(Some(IO_TIMEOUT))?;
    conn.set_write_timeout(Some(IO_TIMEOUT))?;
    let path = match read_request_path(&mut conn) {
        Some(path) => path,
        None => return respond(&mut conn, 400, "text/plain", "bad request\n"),
    };
    match path.as_str() {
        "/metrics" => {
            let body = obs_export::metrics_snapshot(&stats.snapshot(), obs).render_prometheus();
            respond(&mut conn, 200, "text/plain; version=0.0.4", &body)
        }
        "/stats.json" => {
            let body = obs_export::metrics_snapshot(&stats.snapshot(), obs).render_json();
            respond(&mut conn, 200, "application/json", &body)
        }
        "/traces.json" => {
            let body = render_traces_json(obs, MAX_HTTP_TRACES);
            respond(&mut conn, 200, "application/json", &body)
        }
        _ => respond(&mut conn, 404, "text/plain", "not found\n"),
    }
}

/// Reads the request head and returns the path of a `GET` request line;
/// `None` on anything malformed, oversized, or non-GET.
fn read_request_path(conn: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !head_complete(&buf) {
        if buf.len() >= MAX_REQUEST_BYTES {
            return None;
        }
        match conn.read(&mut chunk) {
            Ok(0) => break,
            // `Read` guarantees n <= chunk.len(); treat a violation as a
            // malformed request instead of trusting it with a panic.
            Ok(n) => buf.extend_from_slice(chunk.get(..n)?),
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Ignore any query string: `/metrics?foo=1` still scrapes.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

fn respond(conn: &mut TcpStream, status: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

/// JSON for `/traces.json`: the slow-query log and the sampled ring, each
/// trace with its full per-stage breakdown in nanoseconds.
pub fn render_traces_json(obs: &Observer, max: usize) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"sample_every\":{},\"slow_threshold_ns\":{},",
        obs.sample_every(),
        obs.slow_threshold_ns()
    ));
    out.push_str("\"slow\":");
    render_trace_list(&mut out, &obs.slow_traces(max));
    out.push_str(",\"recent\":");
    render_trace_list(&mut out, &obs.recent_traces(max));
    out.push('}');
    out
}

fn render_trace_list(out: &mut String, traces: &[Trace]) {
    out.push('[');
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"epoch\":{},\"source\":{},\"total_ns\":{},\"attributed_ns\":{},\"stages\":{{",
            t.id,
            t.epoch,
            t.source,
            t.total_ns,
            t.attributed_ns()
        ));
        let mut first = true;
        for &stage in STAGES.iter() {
            // Stage discriminants index the fixed-size span array; a missing
            // entry renders as zero rather than panicking the HTTP thread.
            let ns = t.stages_ns.get(stage as usize).copied().unwrap_or(0);
            if ns == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{ns}", json_str(stage.name())));
        }
        out.push_str("}}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_obs::{ObsConfig, Stage, TraceBuilder};

    fn scrape(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).expect("connect scrape");
        conn.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("send request");
        let mut raw = String::new();
        conn.read_to_string(&mut raw).expect("read response");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn endpoint_serves_metrics_stats_and_traces() {
        let stats = Arc::new(ServiceStats::new());
        stats.record_request();
        stats.record_exact_hit();
        let obs = Arc::new(Observer::new(ObsConfig {
            sample_every: 1,
            ..ObsConfig::default()
        }));
        let mut b = TraceBuilder::new();
        b.add_ns(Stage::Model, 5_000);
        obs.finish_trace(&b, Duration::from_micros(7), 3, 0);

        let server =
            MetricsServer::bind("127.0.0.1:0", Arc::clone(&stats), Arc::clone(&obs)).expect("bind");
        let addr = server.local_addr();

        let (status, body) = scrape(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("cardest_requests_total 1"));
        assert!(body.contains("# TYPE cardest_request_latency histogram"));

        let (status, body) = scrape(addr, "/stats.json");
        assert_eq!(status, 200);
        assert!(body.starts_with('{') && body.ends_with('}'));
        assert!(body.contains("\"cardest_exact_hits_total\":1"));

        let (status, body) = scrape(addr, "/traces.json");
        assert_eq!(status, 200);
        assert!(body.contains("\"recent\":[{"));
        assert!(body.contains("\"model\":5000"));

        let (status, _) = scrape(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
    }
}
