//! Shared fixtures for the serve crate's unit tests: quickly trained tiny
//! estimators (accuracy is irrelevant here; determinism and monotonicity are
//! what the serving layer relies on).

use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::{Dataset, Workload};
use cardest_fx::build_extractor;

/// A tiny Hamming dataset plus a CardNet trained on it for two epochs.
pub(crate) fn tiny_setup(seed: u64) -> (Dataset, CardNetEstimator) {
    let ds = hm_imagenet(SynthConfig::new(120, seed));
    let fx = build_extractor(&ds, 8, 1);
    let split = Workload::sample_from(&ds, 0.3, 6, 2).split(3);
    let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
    cfg.phi_hidden = vec![16];
    cfg.z_dim = 8;
    cfg = cfg.without_vae();
    let opts = TrainerOptions {
        epochs: 2,
        vae_epochs: 0,
        ..TrainerOptions::quick()
    };
    let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
    (ds, CardNetEstimator::from_trainer(fx, trainer))
}

/// Just the estimator, for registry tests that never issue a query.
pub(crate) fn tiny_estimator(seed: u64) -> CardNetEstimator {
    tiny_setup(seed).1
}
