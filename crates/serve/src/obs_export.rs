//! The unified metrics registry: one [`MetricsSnapshot`] aggregating every
//! counter the process keeps — [`ServiceStats`](crate::stats::ServiceStats)
//! atomics, the process-wide [`cardest_core::metrics`] API counters (live
//! worker threads *and* exited ones, via the global drain), and the
//! per-stage tracing histograms from the service's
//! [`Observer`].
//!
//! Every export surface reads through here — the wire `Stats` frame, the
//! HTTP `/metrics` (Prometheus text) and `/stats.json` endpoints, and the
//! CLI `stats` subcommand — so a counter scraped over HTTP, pulled over the
//! socket, and printed by the CLI is always the *same* counter read the
//! same way. Metric names are stable and prefixed `cardest_`.

use crate::stats::StatsSnapshot;
use cardest_obs::{MetricsSnapshot, Observer, STAGES};

/// Builds the unified snapshot. `stats` is the service's counter snapshot,
/// `obs` its tracing observer; API counters are read process-wide (the
/// core registry drains exiting worker threads into a retired slab, so
/// totals are exact even across worker churn).
pub fn metrics_snapshot(stats: &StatsSnapshot, obs: &Observer) -> MetricsSnapshot {
    let api = cardest_core::metrics::ApiCounters::process_totals();
    let mut m = MetricsSnapshot::new();

    // Request-path counters (ServiceStats).
    m.push_counter("cardest_requests_total", stats.requests);
    m.push_counter("cardest_answered_total", stats.answered());
    m.push_counter("cardest_exact_hits_total", stats.exact_hits);
    m.push_counter("cardest_bound_hits_total", stats.bound_hits);
    m.push_counter("cardest_computed_total", stats.computed);
    m.push_counter("cardest_coalesced_total", stats.coalesced);
    m.push_counter("cardest_errors_total", stats.errors);
    m.push_counter("cardest_shed_bracket_total", stats.shed_bracket);
    m.push_counter("cardest_shed_rejected_total", stats.shed_rejected);
    m.push_counter("cardest_quota_rejected_total", stats.quota_rejected);
    m.push_counter("cardest_batches_total", stats.batches);
    m.push_counter("cardest_batch_rows_total", stats.batch_size_sum);
    m.push_counter("cardest_ingress_bytes_total", stats.ingress_bytes);
    m.push_counter("cardest_ingress_frames_total", stats.ingress_frames);

    // Process-wide API counters (cardest_core::metrics, drained globally).
    m.push_counter("cardest_api_extractions_total", api.extractions);
    m.push_counter("cardest_api_encoder_passes_total", api.encoder_passes);
    m.push_counter("cardest_api_decoder_calls_total", api.decoder_calls);
    m.push_counter("cardest_api_sheds_total", api.sheds);
    m.push_counter("cardest_api_degraded_answers_total", api.degraded_answers);
    m.push_counter("cardest_api_encoder_ns_total", api.encoder_ns);
    m.push_counter("cardest_api_decoder_ns_total", api.decoder_ns);

    // Tracing counters.
    m.push_counter("cardest_traces_finished_total", obs.finished());
    m.push_counter("cardest_traces_captured_total", obs.captured());
    m.push_counter("cardest_slow_queries_total", obs.slow_seen());

    // Derived gauges.
    m.push_gauge("cardest_shed_rate", stats.shed_rate());
    m.push_gauge("cardest_cache_hit_rate", stats.hit_rate());
    m.push_gauge("cardest_saved_rate", stats.saved_rate());
    m.push_gauge("cardest_mean_batch_size", stats.mean_batch_size());
    m.push_gauge(
        "cardest_tracing_enabled",
        if obs.enabled() { 1.0 } else { 0.0 },
    );
    m.push_gauge("cardest_trace_sample_every", obs.sample_every() as f64);
    m.push_gauge(
        "cardest_slow_threshold_seconds",
        obs.slow_threshold_ns() as f64 / 1e9,
    );

    // Latency histograms: the end-to-end one plus one per pipeline stage.
    m.push_histogram("cardest_request_latency", obs.total_histogram());
    for &stage in STAGES.iter() {
        m.push_histogram(
            format!("cardest_stage_{}_latency", stage.name()),
            obs.stage_histogram(stage),
        );
    }
    m
}

/// The flat `(name, value)` counter list carried by a wire `Stats` frame:
/// every counter from the unified snapshot plus the histogram summaries
/// flattened into `_count` / `_sum_ns` / `_p50_ns` / `_p99_ns` entries, so
/// a socket client needs no histogram decoding to read quantiles.
pub fn wire_counters(stats: &StatsSnapshot, obs: &Observer) -> Vec<(String, u64)> {
    let m = metrics_snapshot(stats, obs);
    let mut out: Vec<(String, u64)> = m.counters().to_vec();
    for (name, hist) in m.histograms() {
        out.push((format!("{name}_count"), hist.count));
        out.push((format!("{name}_sum_ns"), hist.sum_ns));
        out.push((format!("{name}_p50_ns"), hist.quantile_ns(0.50)));
        out.push((format!("{name}_p99_ns"), hist.quantile_ns(0.99)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_obs::{ObsConfig, Stage, TraceBuilder};
    use std::time::Duration;

    fn observer_with_traffic() -> Observer {
        let obs = Observer::new(ObsConfig {
            sample_every: 1,
            ..ObsConfig::default()
        });
        let mut b = TraceBuilder::new();
        b.add(Stage::Model, Duration::from_micros(80));
        b.add(Stage::QueueWait, Duration::from_micros(10));
        obs.finish_trace(&b, Duration::from_micros(100), 1, 0);
        obs
    }

    #[test]
    fn snapshot_contains_stats_api_and_stage_metrics() {
        let stats = crate::stats::ServiceStats::new();
        stats.record_request();
        stats.record_exact_hit();
        stats.record_ingress(64, 1);
        let obs = observer_with_traffic();
        let m = metrics_snapshot(&stats.snapshot(), &obs);
        assert_eq!(m.counter("cardest_requests_total"), Some(1));
        assert_eq!(m.counter("cardest_exact_hits_total"), Some(1));
        assert_eq!(m.counter("cardest_ingress_bytes_total"), Some(64));
        assert_eq!(m.counter("cardest_traces_finished_total"), Some(1));
        // One histogram per stage plus the end-to-end one.
        assert_eq!(m.histograms().len(), 1 + STAGES.len());
        assert_eq!(m.histogram("cardest_stage_model_latency").unwrap().count, 1);
        // Renders parse-ably in both formats (shape is tested in cardest-obs;
        // here we only check the names made it through).
        let prom = m.render_prometheus();
        assert!(prom.contains("cardest_requests_total 1"));
        assert!(prom.contains("cardest_stage_model_latency_bucket"));
        let json = m.render_json();
        assert!(json.contains("\"cardest_requests_total\":1"));
    }

    #[test]
    fn wire_counters_flatten_histogram_summaries() {
        let stats = crate::stats::ServiceStats::new();
        stats.record_request();
        let obs = observer_with_traffic();
        let rows = wire_counters(&stats.snapshot(), &obs);
        let get = |name: &str| {
            rows.iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing wire counter {name}"))
        };
        assert_eq!(get("cardest_requests_total"), 1);
        assert_eq!(get("cardest_request_latency_count"), 1);
        assert!(get("cardest_request_latency_p99_ns") > 0);
        assert_eq!(get("cardest_stage_model_latency_count"), 1);
    }
}
