//! The request path: a worker pool that drains an mpsc queue into
//! micro-batches, probes the monotone cache, and runs per-distance decoding
//! **once per batch** instead of once per query.
//!
//! Batching changes the arithmetic *layout*, not the arithmetic: the batched
//! kernel ([`cardest_core::CardNetModel::infer_dist_batch`]) computes each
//! row with the same per-row accumulation order as the single-query path, so
//! served estimates are **bit-identical** to `estimator.estimate(q, θ)` run
//! on one thread with no batching. That invariant is what makes the cache
//! sound (a cached value *is* the value) and is asserted by the integration
//! tests and by `exp_serve`.
//!
//! Concurrency layout: one shared queue, `workers` threads. A worker locks
//! the queue only while *collecting* a batch (blocking for at most
//! `batch_window`); it computes with the lock released, so collection of the
//! next batch overlaps with computation of the current one. Under load this
//! converges to all workers computing while one collects — the classic
//! single-dispatcher micro-batching layout, with no dedicated dispatcher
//! thread to idle when traffic stops.

use crate::cache::{CacheLookup, EstimateCache};
use crate::lockwitness::{self, TrackedLock};
use crate::registry::{ModelRegistry, RegistryReader, ServeModel};
use crate::stats::{ServiceStats, StatsSnapshot};
use cardest_core::{CardinalityEstimator, Estimate, PreparedQuery};
use cardest_data::{BitVec, Record};
use cardest_obs::{ObsConfig, Observer, Stage, TraceBuilder};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Largest micro-batch a worker will assemble.
    pub batch_max: usize,
    /// How long a worker waits for the batch to fill once the first request
    /// arrived. Zero means "drain whatever is already queued, never wait".
    pub batch_window: Duration,
    /// Total estimate-cache entries across shards; 0 disables caching.
    pub cache_capacity: usize,
    /// Relative slack for the monotone-bound short-circuit: a bracket
    /// `[lo, hi]` answers the request when `hi − lo ≤ tolerance · max(hi, 1)`.
    /// At the default `0.0` only *degenerate* brackets (`lo == hi`) short-
    /// circuit — those pin the true value exactly, so estimates stay
    /// bit-identical to the uncached path.
    pub bound_tolerance: f64,
    /// When > 0, each computed miss runs the model's full threshold
    /// **curve** (same per-row arithmetic, every decoder is evaluated either
    /// way) and seeds the cache with this many evenly spaced curve points in
    /// addition to the requested τ — so a later miss between two cached τ
    /// values answers from the same model epoch's [`Estimate`] bounds, and a
    /// θ-sweep over a repeated query turns into exact hits. `0` (default)
    /// keeps the plain batched-kernel path.
    pub cache_curve_points: usize,
    /// Worker threads the batched compute kernel may use *per micro-batch*
    /// (plumbed into [`cardest_core::CardinalityEstimator::estimate_batch_par`]).
    /// Threaded kernels are bit-identical to the scalar path, so this is a
    /// latency knob with no effect on served estimates. Default 1: the pool
    /// already runs `workers` batches concurrently, so intra-batch threading
    /// pays off mainly for large batches on big machines.
    pub kernel_threads: usize,
    /// Pinned compute-kernel backend for the micro-batch kernels; `None`
    /// (default) resolves [`cardest_core::KernelBackend::default_backend`]
    /// — the `CARDEST_KERNEL_BACKEND` env override, else the best tier the
    /// CPU supports (explicit AVX2/AVX-512 SIMD where available). Every
    /// backend is bit-identical, so this too can never change a served
    /// estimate or a cache entry.
    pub kernel_backend: Option<cardest_core::KernelBackend>,
    /// Per-stage tracing master switch. When off, workers skip every span
    /// clock read; the [`Observer`] still exists (so it can be re-enabled at
    /// runtime via [`cardest_obs::Observer::set_enabled`]) but records
    /// nothing.
    pub tracing: bool,
    /// Capture every n-th finished request as a full trace (1 = all,
    /// 0 = never; slow queries are always captured).
    pub trace_sample: u64,
    /// End-to-end latency at or above which a request lands in the
    /// slow-query log with its full span breakdown.
    pub slow_threshold: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            batch_max: 64,
            batch_window: Duration::from_micros(200),
            cache_capacity: 4096,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            tracing: true,
            trace_sample: 16,
            slow_threshold: Duration::from_millis(100),
        }
    }
}

impl ServeConfig {
    /// The observer configuration implied by the tracing knobs.
    pub fn obs_config(&self) -> ObsConfig {
        ObsConfig {
            enabled: self.tracing,
            sample_every: self.trace_sample,
            slow_threshold: self.slow_threshold,
            ..ObsConfig::default()
        }
    }

    /// The per-micro-batch kernel budget handed to the estimator's batched
    /// paths: [`ServeConfig::kernel_threads`] workers, with
    /// [`ServeConfig::kernel_backend`] pinned when set.
    pub fn kernel_parallelism(&self) -> cardest_core::Parallelism {
        cardest_core::Parallelism::threads(self.kernel_threads)
            .with_backend_opt(self.kernel_backend)
    }
}

/// One estimation request.
#[derive(Clone)]
pub struct Request {
    /// Registry name of the model to query.
    pub model: String,
    /// The query record (`Arc` so a load generator can replay a shared
    /// stream without cloning payloads).
    pub query: Arc<Record>,
    /// Similarity threshold θ.
    pub theta: f64,
}

/// How a response was produced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EstimateSource {
    /// Ran through the model, in a micro-batch of `batch_size` unique
    /// queries.
    Computed { batch_size: usize },
    /// Identical to another request in the same micro-batch; answered from
    /// that request's row without its own model run.
    Coalesced,
    /// Exact cache entry for `(epoch, fingerprint, τ)`.
    CacheExact,
    /// Monotone bracket `[lo, hi]` was tight enough to answer without the
    /// model.
    CacheBounds { lo: f64, hi: f64 },
    /// Load-shed **degraded** answer: the request was refused a model run
    /// (admission control or an expired deadline) and answered from the
    /// monotone cache bracket `[lo, hi]` instead. The point value is the
    /// bracket's [`Estimate::from_bracket`] value; clients should trust the
    /// bounds, not the point.
    ShedBracket { lo: f64, hi: f64 },
}

impl EstimateSource {
    /// Whether this answer is a degraded (load-shed) one.
    pub fn is_degraded(&self) -> bool {
        matches!(self, EstimateSource::ShedBracket { .. })
    }
}

/// A served estimate, tagged with the epoch of the model that produced it —
/// the tag a client (or test) uses to tell which side of a hot-swap it saw.
#[derive(Clone, Debug)]
pub struct Response {
    pub estimate: f64,
    /// Publish epoch of the model that answered (see [`ServeModel::epoch`]).
    pub epoch: u64,
    pub source: EstimateSource,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// No model is published under the requested name.
    UnknownModel(String),
    /// The service shut down before (or while) answering.
    ServiceStopped,
    /// The request sat queued past its deadline and no cache bracket was
    /// available for a degraded answer.
    DeadlineExceeded,
    /// Admission control refused the request (bounded queue full) and no
    /// cache bracket was available for a degraded answer.
    Overloaded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "no model published as `{name}`"),
            ServeError::ServiceStopped => write!(f, "service stopped"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded while queued"),
            ServeError::Overloaded => write!(f, "service overloaded, request shed"),
        }
    }
}

impl std::error::Error for ServeError {}

struct Job {
    req: Request,
    resp: Sender<Result<Response, ServeError>>,
    enqueued: Instant,
    /// Load-shed horizon: a job still unserved past this instant is answered
    /// from the cache bracket (degraded) or refused, never computed.
    deadline: Option<Instant>,
    /// Zero-allocation span accumulator; may arrive pre-seeded with
    /// decode/admission spans measured by the ingress layer before the job
    /// existed.
    trace: TraceBuilder,
}

/// A cloneable submission handle; cheap to hand to every client thread.
#[derive(Clone)]
pub struct ServiceClient {
    tx: Sender<Job>,
    stats: Arc<ServiceStats>,
}

impl ServiceClient {
    /// Enqueues a request; the returned channel yields exactly one result.
    /// Submitting many requests before draining any is how a client opts
    /// into pipelining (and gives workers batches to chew on).
    pub fn submit(&self, req: Request) -> Receiver<Result<Response, ServeError>> {
        self.submit_with_deadline(req, None)
    }

    /// [`ServiceClient::submit`] with a load-shed budget: if the request is
    /// still queued once `deadline` has elapsed, a worker answers it from
    /// the monotone cache bracket (degraded, [`EstimateSource::ShedBracket`])
    /// or with [`ServeError::DeadlineExceeded`] — it never spends model time
    /// on an answer the caller has already given up on.
    pub fn submit_with_deadline(
        &self,
        req: Request,
        deadline: Option<Duration>,
    ) -> Receiver<Result<Response, ServeError>> {
        self.submit_traced(req, deadline, TraceBuilder::new())
    }

    /// [`ServiceClient::submit_with_deadline`] with a pre-seeded span
    /// accumulator: the socket ingress passes `Decode`/`Admission` spans it
    /// measured before the job existed, so captured traces cover the whole
    /// wire path, not just queue-to-response.
    pub fn submit_traced(
        &self,
        req: Request,
        deadline: Option<Duration>,
        trace: TraceBuilder,
    ) -> Receiver<Result<Response, ServeError>> {
        self.stats.record_request();
        // capacity: unbounded, but at most one message ever flows through it
        // (the single response for this request), so depth is ≤ 1 by
        // construction.
        let (resp_tx, resp_rx) = channel();
        // timing: enqueue stamp for deadline arithmetic and QueueWait span
        // attribution; it must exist even for untraced jobs because the
        // deadline check in process_batch consumes it.
        let now = Instant::now();
        let job = Job {
            req,
            resp: resp_tx,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            trace,
        };
        if let Err(send_err) = self.tx.send(job) {
            // Queue closed: answer the caller directly instead of hanging.
            let _ = send_err.0.resp.send(Err(ServeError::ServiceStopped));
        }
        resp_rx
    }

    /// Blocking convenience wrapper around [`ServiceClient::submit`].
    pub fn estimate(
        &self,
        model: &str,
        query: Arc<Record>,
        theta: f64,
    ) -> Result<Response, ServeError> {
        self.submit(Request {
            model: model.to_string(),
            query,
            theta,
        })
        .recv()
        .unwrap_or(Err(ServeError::ServiceStopped))
    }
}

/// The running service: owns the worker pool; dropping it (or calling
/// [`Service::shutdown`]) closes the queue and joins the workers.
pub struct Service {
    registry: Arc<ModelRegistry>,
    cache: Arc<EstimateCache>,
    stats: Arc<ServiceStats>,
    obs: Arc<Observer>,
    client: ServiceClient,
    tx: Option<Sender<Job>>,
    /// Set on shutdown so idle workers wake and exit even while external
    /// [`ServiceClient`] clones still hold the queue's sender side open.
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    config: ServeConfig,
}

impl Service {
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Service {
        // Bridge the observer's internal locks onto the debug lock witness
        // before any worker can touch them (idempotent, no-op in release).
        lockwitness::install_obs_witness();
        let cache = Arc::new(EstimateCache::new(config.cache_capacity));
        let stats = Arc::new(ServiceStats::new());
        let obs = Arc::new(Observer::new(config.obs_config()));
        // capacity: unbounded job queue; admission control (shed brackets +
        // per-source quotas) rejects producers before they enqueue, so queue
        // depth is bounded upstream, and a blocking bounded send here would
        // bypass the shed accounting that the stats/metrics surface reports.
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let reader = registry.reader();
                let cache = Arc::clone(&cache);
                let stats = Arc::clone(&stats);
                let obs = Arc::clone(&obs);
                let stop = Arc::clone(&stop);
                let cfg = config.clone();
                std::thread::spawn(move || {
                    worker_loop(&rx, reader, &cache, &stats, &obs, &stop, &cfg)
                })
            })
            .collect();
        let client = ServiceClient {
            tx: tx.clone(),
            stats: Arc::clone(&stats),
        };
        Service {
            registry,
            cache,
            stats,
            obs,
            client,
            tx: Some(tx),
            stop,
            workers,
            config,
        }
    }

    pub fn client(&self) -> ServiceClient {
        self.client.clone()
    }

    pub fn submit(&self, req: Request) -> Receiver<Result<Response, ServeError>> {
        self.client.submit(req)
    }

    pub fn estimate(
        &self,
        model: &str,
        query: Arc<Record>,
        theta: f64,
    ) -> Result<Response, ServeError> {
        self.client.estimate(model, query, theta)
    }

    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    pub fn cache(&self) -> &EstimateCache {
        &self.cache
    }

    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The live counters themselves (the ingress layer shares them so shed
    /// and quota events land in the same snapshot as served traffic).
    pub fn stats_handle(&self) -> &Arc<ServiceStats> {
        &self.stats
    }

    /// Per-stage tracing state: histograms, the sampled-trace ring, and the
    /// slow-query log. The ingress layer records its `Decode`, `Admission`,
    /// and `RespondEncode` spans here, and the introspection surfaces
    /// (wire `Stats`/`Traces` frames, the HTTP exporter) read from it.
    pub fn observer(&self) -> &Arc<Observer> {
        &self.obs
    }

    /// Admission-control fallback: answers `query`@`theta` from the cache
    /// **without touching the request queue** — the saturation path.
    ///
    /// * An exact `(epoch, fp, τ)` entry answers at full fidelity
    ///   ([`EstimateSource::CacheExact`]): saturation never degrades a
    ///   request the cache can answer outright.
    /// * A monotone bracket answers degraded
    ///   ([`EstimateSource::ShedBracket`]) — the trade the monotonicity
    ///   guarantee makes possible: a bounded-error estimate at zero model
    ///   cost while the queue is full.
    /// * `Ok(None)` means nothing was cached; the caller rejects with
    ///   [`ServeError::Overloaded`].
    pub fn shed_answer(
        &self,
        model: &str,
        query: &Arc<Record>,
        theta: f64,
    ) -> Result<Option<Response>, ServeError> {
        let Some(model) = self.registry.get(model) else {
            return Err(ServeError::UnknownModel(model.to_string()));
        };
        let estimator = &model.estimator;
        let prepared = estimator.prepare_shared(query);
        let fp = fingerprint(prepared.bits().expect("CardNet prepare extracts"));
        let tau = estimator.threshold_step(theta);
        match self.cache.lookup(model.epoch, fp, tau) {
            CacheLookup::Exact(value) => {
                self.stats.record_exact_hit();
                Ok(Some(Response {
                    estimate: value,
                    epoch: model.epoch,
                    source: EstimateSource::CacheExact,
                }))
            }
            CacheLookup::Bounds { lo, hi } if model.monotone => {
                let bracket = Estimate::from_bracket(lo, hi);
                self.stats.record_shed_bracket();
                cardest_core::metrics::record_shed();
                cardest_core::metrics::record_degraded_answer();
                Ok(Some(Response {
                    estimate: bracket.value,
                    epoch: model.epoch,
                    source: EstimateSource::ShedBracket { lo, hi },
                }))
            }
            _ => Ok(None),
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Closes the queue, lets workers drain in-flight jobs, joins them.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // The stop flag (not channel disconnection) is what ends the workers:
        // an external `ServiceClient` clone may still hold a live sender, so
        // idle workers cannot rely on `recv()` erroring out. They poll the
        // flag between idle ticks, finish any in-flight batch, and exit.
        self.stop.store(true, Ordering::Release);
        self.tx = None;
        self.client.tx = dead_sender();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A sender whose receiver is already gone — used to neuter the service's
/// internal client on shutdown.
fn dead_sender() -> Sender<Job> {
    // capacity: unbounded but inert — the receiver is dropped immediately,
    // so every send fails fast and nothing is ever queued.
    let (tx, _) = channel();
    tx
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Stable fingerprint of a query *as the model sees it*: the extracted bit
/// vector. Two records that extract identically share cache entries.
fn fingerprint(bits: &BitVec) -> u64 {
    // DefaultHasher is keyed with constants, so fingerprints are stable
    // across threads and runs (required: cache keys outlive any one thread).
    let mut h = DefaultHasher::new();
    bits.len().hash(&mut h);
    bits.words().hash(&mut h);
    h.finish()
}

/// How often an idle worker wakes to check the stop flag.
const IDLE_TICK: Duration = Duration::from_millis(25);

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    mut reader: RegistryReader,
    cache: &EstimateCache,
    stats: &ServiceStats,
    obs: &Observer,
    stop: &AtomicBool,
    cfg: &ServeConfig,
) {
    loop {
        let batch = collect_batch(rx, stop, cfg.batch_max, cfg.batch_window, obs.enabled());
        if batch.is_empty() {
            return; // queue disconnected or service stopped
        }
        process_batch(batch, &mut reader, cache, stats, obs, cfg);
    }
}

/// Blocks for the first job (waking every [`IDLE_TICK`] to honor shutdown),
/// then fills the batch until `batch_max`, the window closes, or the queue
/// drains. The queue lock is held throughout — collection is serialized
/// across workers, computation is not.
fn collect_batch(
    rx: &Mutex<Receiver<Job>>,
    stop: &AtomicBool,
    batch_max: usize,
    window: Duration,
    traced: bool,
) -> Vec<Job> {
    let _witness = lockwitness::acquire(TrackedLock::JobQueue);
    // lint: allow(guard-held-across-blocking) the queue lock IS the batch-
    // collection critical section: exactly one worker assembles a batch at a
    // time while the others sleep on the mutex, and every recv under the
    // guard is bounded by IDLE_TICK or the remaining batch window.
    let rx = rx.lock().expect("request queue poisoned");
    let first = loop {
        if stop.load(Ordering::Acquire) {
            // Drain-but-stop: answer anything already queued, then exit.
            match rx.try_recv() {
                Ok(job) => break job,
                Err(_) => return Vec::new(),
            }
        }
        match rx.recv_timeout(IDLE_TICK) {
            Ok(job) => break job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return Vec::new(),
        }
    };
    let mut batch = vec![first];
    // timing: batch-window control clock — it bounds how long the worker
    // waits for more jobs, so it runs unconditionally; the same stamp seeds
    // QueueWait/BatchWindow span attribution below when tracing is on.
    let t_first = Instant::now();
    let deadline = t_first + window;
    while batch.len() < batch_max.max(1) {
        // timing: remaining-window computation for the same control clock.
        let now = Instant::now();
        if now >= deadline {
            // Window closed: take only what is already queued.
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        } else {
            match rx.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    if traced {
        // Span attribution per job: queue wait is enqueue → the worker's
        // first recv (zero for jobs that arrived *during* the window), batch
        // window is the remainder until the batch sealed.
        // timing: seal stamp feeding the QueueWait/BatchWindow spans; only
        // reached when `traced`, so it is already observation-gated.
        let t_sealed = Instant::now();
        for job in &mut batch {
            let picked_up = if job.enqueued > t_first {
                job.enqueued
            } else {
                t_first
            };
            job.trace.add(
                Stage::QueueWait,
                picked_up.saturating_duration_since(job.enqueued),
            );
            job.trace.add(
                Stage::BatchWindow,
                t_sealed.saturating_duration_since(picked_up),
            );
        }
    }
    batch
}

fn process_batch(
    batch: Vec<Job>,
    reader: &mut RegistryReader,
    cache: &EstimateCache,
    stats: &ServiceStats,
    obs: &Observer,
    cfg: &ServeConfig,
) {
    // Group by model name (almost always a single group), resolving each
    // name once per batch so every job in a group sees the same model Arc.
    let mut groups: Vec<(String, Vec<Job>)> = Vec::new();
    for job in batch {
        match groups.iter_mut().find(|(name, _)| *name == job.req.model) {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((job.req.model.clone(), vec![job])),
        }
    }
    for (name, jobs) in groups {
        match reader.get(&name) {
            Some(model) => serve_group(&model, jobs, cache, stats, obs, cfg),
            None => {
                for job in jobs {
                    stats.record_error();
                    stats.record_latency(job.enqueued.elapsed());
                    let _ = job.resp.send(Err(ServeError::UnknownModel(name.clone())));
                }
            }
        }
    }
}

struct Pending {
    job: Job,
    fp: u64,
    tau: usize,
    prepared: PreparedQuery,
    /// When this job's own prepare/probe work finished (traced runs only);
    /// the wait from here to the kernel launch is sibling/dedup time and is
    /// attributed to `Stage::BatchWindow` so traces stay gap-free.
    ready: Option<Instant>,
}

fn serve_group(
    model: &ServeModel,
    jobs: Vec<Job>,
    cache: &EstimateCache,
    stats: &ServiceStats,
    obs: &Observer,
    cfg: &ServeConfig,
) {
    let estimator = &model.estimator;
    let epoch = model.epoch;
    let traced = obs.enabled();
    let mut pending: Vec<Pending> = Vec::with_capacity(jobs.len());

    // ≈ the batch seal time (process_batch's grouping in between is ns
    // scale). The group loop below is serialized, so a job late in a large
    // batch spends real wall clock waiting on its siblings' prepare/probe
    // work; that wait is attributed to BatchWindow — "waiting on the batch"
    // — so per-stage sums keep covering end-to-end latency as batches grow.
    let t_group = traced.then(Instant::now);
    for mut job in jobs {
        // `prepare_shared` runs `h_rec` once and keeps the request's
        // `Arc<Record>` without copying the payload; the estimate depends on
        // θ only through τ = threshold_step(θ), so τ is the cache's θ-bucket.
        let t_prep = traced.then(Instant::now);
        if let (Some(t0), Some(t1)) = (t_group, t_prep) {
            // For jobs answered inside this loop (cache hits, sheds) this is
            // their whole sibling wait; pending jobs get the rest at the
            // kernel call below.
            job.trace
                .add(Stage::BatchWindow, t1.saturating_duration_since(t0));
        }
        let prepared = estimator.prepare_shared(&job.req.query);
        let fp = fingerprint(prepared.bits().expect("CardNet prepare extracts"));
        let tau = estimator.threshold_step(job.req.theta);
        if let Some(t) = t_prep {
            job.trace.add(Stage::Prepare, t.elapsed());
        }
        // A job queued past its deadline is load-shed: a cache answer is
        // still free (exact hits below cost nothing), but it will not be
        // granted a model run.
        let expired = match job.deadline {
            // timing: admission-control check against the enqueue-relative
            // deadline, not a latency measurement.
            Some(deadline) => Instant::now() > deadline,
            None => false,
        };
        let t_probe = traced.then(Instant::now);
        let lookup = cache.lookup(epoch, fp, tau);
        if let Some(t) = t_probe {
            job.trace.add(Stage::CacheProbe, t.elapsed());
        }
        match lookup {
            CacheLookup::Exact(value) => {
                stats.record_exact_hit();
                respond(job, value, epoch, EstimateSource::CacheExact, stats, obs);
            }
            CacheLookup::Bounds { lo, hi } if model.monotone => {
                // Two cached curve points bracket the miss; `Estimate` owns
                // the pin/tolerance math. A pinned bracket (`lo == hi`)
                // squeezes the true value exactly — monotone curves cannot
                // dip between equal endpoints — so the short-circuit stays
                // bit-identical even at tolerance 0, and the pinned value is
                // safe to cache as exact.
                let bracket = Estimate::from_bracket(lo, hi);
                if bracket.is_pinned() {
                    cache.insert(epoch, fp, tau, bracket.value);
                }
                if bracket.is_pinned() || bracket.within_tolerance(cfg.bound_tolerance) {
                    stats.record_bound_hit();
                    respond(
                        job,
                        bracket.value,
                        epoch,
                        EstimateSource::CacheBounds { lo, hi },
                        stats,
                        obs,
                    );
                } else if expired {
                    // The deadline passed while queued, but monotonicity
                    // still buys a degraded answer: the bracket's midpoint
                    // with honest `[lo, hi]` bounds, no model time spent.
                    stats.record_shed_bracket();
                    cardest_core::metrics::record_shed();
                    cardest_core::metrics::record_degraded_answer();
                    respond(
                        job,
                        bracket.value,
                        epoch,
                        EstimateSource::ShedBracket { lo, hi },
                        stats,
                        obs,
                    );
                } else {
                    pending.push(Pending {
                        ready: traced.then(Instant::now),
                        job,
                        fp,
                        tau,
                        prepared,
                    });
                }
            }
            _ if expired => {
                // Nothing cached to degrade onto: refuse rather than spend
                // model time past the caller's budget.
                stats.record_shed_reject();
                cardest_core::metrics::record_shed();
                stats.record_latency(job.enqueued.elapsed());
                let _ = job.resp.send(Err(ServeError::DeadlineExceeded));
            }
            _ => pending.push(Pending {
                ready: traced.then(Instant::now),
                job,
                fp,
                tau,
                prepared,
            }),
        }
    }

    if pending.is_empty() {
        return;
    }

    // Coalesce duplicates: a Zipf-hot query repeated within one micro-batch
    // gets one model row, not many. In curve mode one computed curve answers
    // *every* τ of a query, so rows dedup on the fingerprint alone — a
    // same-query θ-sweep landing in one batch costs one model run. (Like the
    // cache, this trusts the 64-bit fingerprint; a SipHash collision between
    // distinct live queries is vanishingly unlikely and would only alias two
    // cache entries.)
    let curve_mode = cfg.cache_curve_points > 0;
    let mut seen: std::collections::HashMap<(u64, usize), usize> = std::collections::HashMap::new();
    let mut unique: Vec<usize> = Vec::new(); // pending indices, one per row
    let mut row_of: Vec<usize> = Vec::with_capacity(pending.len());
    for (i, p) in pending.iter().enumerate() {
        let key = (p.fp, if curve_mode { 0 } else { p.tau });
        let row = *seen.entry(key).or_insert_with(|| {
            unique.push(i);
            unique.len() - 1
        });
        row_of.push(row);
    }

    let batch_size = unique.len();
    enum RowResult {
        Scalar(f64),
        Curve(cardest_core::CardinalityCurve),
    }
    // Model span: the whole batched kernel call's wall clock, attributed to
    // every job it answered (the batch is the unit of compute — each job's
    // latency really did include the full call). The encoder/decoder
    // sub-spans come from this thread's `ApiCounters` timing delta, which
    // captures the kernel work exactly at `kernel_threads: 1` (the default;
    // threaded kernels run part of the work on scoped threads this
    // thread-local meter cannot see).
    let meter_before = traced.then(cardest_core::metrics::ApiCounters::snapshot);
    let t_model = traced.then(Instant::now);
    if let Some(tm) = t_model {
        for p in &mut pending {
            if let Some(ready) = p.ready {
                // Remaining siblings' prepare/probe plus coalescing between
                // this job going pending and the kernel launch.
                p.job
                    .trace
                    .add(Stage::BatchWindow, tm.saturating_duration_since(ready));
            }
        }
    }
    let rows: Vec<RowResult> = if curve_mode {
        // Curve path: the batched curve kernel (one encoder pass for the
        // whole micro-batch — every decoder column comes out of it anyway)
        // yields each unique query's full curve; seed the cache with evenly
        // spaced curve points so future misses at other τ values answer
        // from curve-derived brackets or exact hits.
        let refs: Vec<&PreparedQuery> = unique.iter().map(|&i| &pending[i].prepared).collect();
        estimator
            .curve_batch_par(&refs, cfg.kernel_parallelism())
            .into_iter()
            .zip(&unique)
            .map(|(curve, &i)| {
                seed_curve_points(cache, epoch, pending[i].fp, &curve, cfg.cache_curve_points);
                RowResult::Curve(curve)
            })
            .collect()
    } else {
        // Batch-first path: the estimator's own batched kernel runs the
        // encoder once for the whole micro-batch. Per-row arithmetic mirrors
        // the scalar path exactly (the API's bit-identity contract), which
        // is what makes the cache sound — a cached value *is* the value.
        let refs: Vec<&PreparedQuery> = unique.iter().map(|&i| &pending[i].prepared).collect();
        let thetas: Vec<f64> = unique.iter().map(|&i| pending[i].job.req.theta).collect();
        estimator
            .estimate_batch_par(&refs, &thetas, cfg.kernel_parallelism())
            .into_iter()
            .map(|e| RowResult::Scalar(e.value))
            .collect()
    };
    let (model_ns, enc_ns, dec_ns) = match (t_model, &meter_before) {
        (Some(t), Some(before)) => {
            let delta = cardest_core::metrics::ApiCounters::snapshot().delta_since(before);
            (
                t.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                delta.encoder_ns,
                delta.decoder_ns,
            )
        }
        _ => (0, 0, 0),
    };
    let t_distribute = traced.then(Instant::now);
    stats.record_batch(batch_size);
    for ((i, mut p), row) in pending.into_iter().enumerate().zip(row_of) {
        let estimate = match &rows[row] {
            RowResult::Scalar(v) => *v,
            // Exact curve value at this request's own τ, whichever row
            // computed the curve.
            RowResult::Curve(curve) => curve.value_at(p.tau),
        };
        let source = if unique[row] == i {
            cache.insert(epoch, p.fp, p.tau, estimate);
            EstimateSource::Computed { batch_size }
        } else {
            if curve_mode {
                // A coalesced τ still gets its exact entry: the value came
                // from the same curve at zero extra model cost.
                cache.insert(epoch, p.fp, p.tau, estimate);
            }
            stats.record_coalesced();
            EstimateSource::Coalesced
        };
        if traced {
            p.job.trace.add_ns(Stage::Model, model_ns);
            p.job.trace.add_ns(Stage::EncoderPass, enc_ns);
            p.job.trace.add_ns(Stage::DecoderSweep, dec_ns);
            if let Some(t) = t_distribute {
                // Earlier siblings' cache insert + respond work is serialized
                // ahead of this job; count that wait against the batch.
                p.job.trace.add(Stage::BatchWindow, t.elapsed());
            }
        }
        respond(p.job, estimate, epoch, source, stats, obs);
    }
}

/// Inserts `points` evenly spaced values of a freshly computed curve (always
/// including the final step) under their τ keys — the curve-derived entries
/// later requests bracket against.
fn seed_curve_points(
    cache: &EstimateCache,
    epoch: u64,
    fp: u64,
    curve: &cardest_core::CardinalityCurve,
    points: usize,
) {
    let last = curve.len() - 1;
    let points = points.clamp(1, curve.len());
    for j in 0..points {
        let step = if points == 1 {
            last
        } else {
            j * last / (points - 1)
        };
        cache.insert(epoch, fp, step, curve.value_at(step));
    }
}

/// The [`Trace::source`] code for an answer: the wire `WireSource`
/// discriminant, so socket clients and trace readers decode sources the
/// same way.
fn source_code(source: &EstimateSource) -> u8 {
    match source {
        EstimateSource::Computed { .. } => 0,
        EstimateSource::Coalesced => 1,
        EstimateSource::CacheExact => 2,
        EstimateSource::CacheBounds { .. } => 3,
        EstimateSource::ShedBracket { .. } => 4,
    }
}

fn respond(
    job: Job,
    estimate: f64,
    epoch: u64,
    source: EstimateSource,
    stats: &ServiceStats,
    obs: &Observer,
) {
    let total = job.enqueued.elapsed();
    stats.record_latency(total);
    if obs.enabled() {
        // A trace seeded by the ingress layer carries spans measured before
        // the job was enqueued; fold them into the end-to-end total so
        // stage coverage is measured against the full wire path.
        let pre_queue_ns = job.trace.get_ns(Stage::Decode) + job.trace.get_ns(Stage::Admission);
        obs.finish_trace(
            &job.trace,
            total + Duration::from_nanos(pre_queue_ns),
            epoch,
            source_code(&source),
        );
    }
    let _ = job.resp.send(Ok(Response {
        estimate,
        epoch,
        source,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_setup;
    use cardest_core::CardinalityEstimator;

    fn unbatched_config() -> ServeConfig {
        ServeConfig {
            workers: 1,
            batch_max: 1,
            batch_window: Duration::ZERO,
            cache_capacity: 0,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn served_estimates_are_bit_identical_to_direct_calls() {
        let (ds, est) = tiny_setup(21);
        let registry = Arc::new(ModelRegistry::new());
        // Reference values from the plain single-thread path, before the
        // estimator moves into the registry.
        let queries: Vec<(Arc<Record>, f64)> = (0..20)
            .map(|i| {
                let q = Arc::new(ds.records[i * 5].clone());
                let theta = ds.theta_max * (i as f64) / 19.0;
                (q, theta)
            })
            .collect();
        let reference: Vec<f64> = queries
            .iter()
            .map(|(q, theta)| est.estimate(q, *theta))
            .collect();
        registry.publish("m", est);

        let service = Service::start(registry, ServeConfig::default());
        for ((q, theta), want) in queries.iter().zip(&reference) {
            let got = service
                .estimate("m", Arc::clone(q), *theta)
                .expect("served")
                .estimate;
            assert_eq!(got.to_bits(), want.to_bits(), "θ={theta}");
        }
        service.shutdown();
    }

    #[test]
    fn repeat_queries_hit_the_cache_exactly() {
        let (ds, est) = tiny_setup(22);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", est);
        let service = Service::start(registry, ServeConfig::default());
        let q = Arc::new(ds.records[3].clone());
        let first = service.estimate("m", Arc::clone(&q), 6.0).expect("first");
        assert!(matches!(first.source, EstimateSource::Computed { .. }));
        let second = service.estimate("m", Arc::clone(&q), 6.0).expect("second");
        assert_eq!(second.source, EstimateSource::CacheExact);
        assert_eq!(second.estimate.to_bits(), first.estimate.to_bits());
        // A different θ in the same τ-bucket also hits.
        let snap = service.stats();
        assert!(snap.exact_hits >= 1);
        service.shutdown();
    }

    #[test]
    fn loose_bracket_computes_tight_bracket_short_circuits() {
        let (ds, est) = tiny_setup(23);
        let fx_tau_max = est.extractor().tau_max();
        let theta_of = {
            let theta_max = ds.theta_max;
            move |tau: usize| theta_max * (tau as f64 + 0.5) / (fx_tau_max as f64)
        };
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", est);
        let cfg = ServeConfig {
            bound_tolerance: f64::INFINITY, // any bracket answers
            ..ServeConfig::default()
        };
        let service = Service::start(registry, cfg);
        let q = Arc::new(ds.records[7].clone());
        let lo = service.estimate("m", Arc::clone(&q), theta_of(1)).unwrap();
        let hi = service.estimate("m", Arc::clone(&q), theta_of(6)).unwrap();
        assert!(lo.estimate <= hi.estimate, "monotonicity");
        let mid = service.estimate("m", Arc::clone(&q), theta_of(3)).unwrap();
        match mid.source {
            EstimateSource::CacheBounds { lo: l, hi: h } => {
                assert_eq!(l.to_bits(), lo.estimate.to_bits());
                assert_eq!(h.to_bits(), hi.estimate.to_bits());
                assert!(l <= mid.estimate && mid.estimate <= h);
            }
            other => panic!("expected a bounds answer, got {other:?}"),
        }
        assert!(service.stats().bound_hits >= 1);
        service.shutdown();
    }

    #[test]
    fn curve_seeding_turns_a_sweep_into_cache_hits() {
        let (ds, est) = tiny_setup(28);
        let tau_max = est.extractor().tau_max();
        // Reference sweep values before the estimator moves into the
        // registry: the served answers must stay bit-identical no matter
        // how the cache produced them.
        let q = Arc::new(ds.records[5].clone());
        let theta_of = |tau: usize| ds.theta_max * (tau as f64 + 0.5) / (tau_max as f64);
        let reference: Vec<f64> = (0..tau_max)
            .map(|t| est.estimate(&q, theta_of(t)))
            .collect();

        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", est);
        let service = Service::start(
            registry,
            ServeConfig {
                workers: 1,
                batch_max: 1,
                batch_window: Duration::ZERO,
                cache_capacity: 4096,
                bound_tolerance: 0.0,
                // Seed every curve point: the first request computes once,
                // the rest of the sweep is exact hits.
                cache_curve_points: tau_max + 1,
                kernel_threads: 1,
                kernel_backend: None,
                ..ServeConfig::default()
            },
        );
        let first = service
            .estimate("m", Arc::clone(&q), theta_of(0))
            .expect("served");
        assert!(matches!(first.source, EstimateSource::Computed { .. }));
        assert_eq!(first.estimate.to_bits(), reference[0].to_bits());
        for (t, want) in reference.iter().enumerate().skip(1) {
            let resp = service
                .estimate("m", Arc::clone(&q), theta_of(t))
                .expect("served");
            assert_eq!(
                resp.source,
                EstimateSource::CacheExact,
                "τ={t} should be a curve-seeded hit"
            );
            assert_eq!(resp.estimate.to_bits(), want.to_bits(), "τ={t}");
        }
        let snap = service.stats();
        assert_eq!(snap.batches, 1, "one model run for the whole sweep");
        assert!(snap.exact_hits >= (tau_max - 1) as u64);
        service.shutdown();
    }

    #[test]
    fn curve_mode_coalesces_a_pipelined_sweep_into_one_model_run() {
        let (ds, est) = tiny_setup(29);
        let tau_max = est.extractor().tau_max();
        let q = Arc::new(ds.records[4].clone());
        let theta_of = |t: usize| ds.theta_max * (t as f64 + 0.5) / (tau_max as f64);
        let reference: Vec<f64> = (0..tau_max)
            .map(|t| est.estimate(&q, theta_of(t)))
            .collect();

        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", est);
        let service = Service::start(
            registry,
            ServeConfig {
                workers: 1,
                batch_max: 64,
                batch_window: Duration::from_millis(200),
                cache_capacity: 4096,
                bound_tolerance: 0.0,
                cache_curve_points: 2,
                kernel_threads: 1,
                kernel_backend: None,
                ..ServeConfig::default()
            },
        );
        // A whole θ-sweep of one query submitted before draining: every τ is
        // distinct, but one curve answers them all — expect exactly one
        // model row and τ_max − 1 coalesced responses.
        let receivers: Vec<_> = (0..tau_max)
            .map(|t| {
                service.submit(Request {
                    model: "m".into(),
                    query: Arc::clone(&q),
                    theta: theta_of(t),
                })
            })
            .collect();
        let responses: Vec<Response> = receivers
            .into_iter()
            .map(|rx| rx.recv().expect("worker alive").expect("served"))
            .collect();
        for (t, (resp, want)) in responses.iter().zip(&reference).enumerate() {
            assert_eq!(resp.estimate.to_bits(), want.to_bits(), "τ={t}");
        }
        let computed = responses
            .iter()
            .filter(|r| matches!(r.source, EstimateSource::Computed { .. }))
            .count();
        let coalesced = responses
            .iter()
            .filter(|r| r.source == EstimateSource::Coalesced)
            .count();
        assert_eq!((computed, coalesced), (1, tau_max - 1));
        let snap = service.stats();
        assert_eq!(snap.batches, 1);
        assert!(
            (snap.mean_batch_size() - 1.0).abs() < 1e-9,
            "one unique curve row"
        );
        service.shutdown();
    }

    #[test]
    fn expired_deadline_with_warm_bracket_sheds_a_degraded_answer() {
        let (ds, est) = tiny_setup(31);
        let fx_tau_max = est.extractor().tau_max();
        let theta_of = {
            let theta_max = ds.theta_max;
            move |tau: usize| theta_max * (tau as f64 + 0.5) / (fx_tau_max as f64)
        };
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", est);
        let service = Service::start(registry, ServeConfig::default());
        let q = Arc::new(ds.records[9].clone());
        // Warm the cache on either side of the τ we will shed at.
        let lo = service.estimate("m", Arc::clone(&q), theta_of(1)).unwrap();
        let hi = service.estimate("m", Arc::clone(&q), theta_of(6)).unwrap();
        // An already-expired deadline: the worker must not spend model time.
        let resp = service
            .client()
            .submit_with_deadline(
                Request {
                    model: "m".into(),
                    query: Arc::clone(&q),
                    theta: theta_of(3),
                },
                Some(Duration::ZERO),
            )
            .recv()
            .expect("service alive")
            .expect("degraded answer");
        match resp.source {
            EstimateSource::ShedBracket { lo: l, hi: h } => {
                assert_eq!(l.to_bits(), lo.estimate.to_bits());
                assert_eq!(h.to_bits(), hi.estimate.to_bits());
                assert!(l <= resp.estimate && resp.estimate <= h);
                assert!(resp.source.is_degraded());
            }
            other => panic!("expected a shed-bracket answer, got {other:?}"),
        }
        let snap = service.stats();
        assert_eq!(snap.shed_bracket, 1);
        assert_eq!(snap.shed_rejected, 0);
        service.shutdown();
    }

    #[test]
    fn expired_deadline_with_cold_cache_is_refused() {
        let (ds, est) = tiny_setup(32);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", est);
        let service = Service::start(registry, ServeConfig::default());
        let q = Arc::new(ds.records[11].clone());
        let err = service
            .client()
            .submit_with_deadline(
                Request {
                    model: "m".into(),
                    query: Arc::clone(&q),
                    theta: 5.0,
                },
                Some(Duration::ZERO),
            )
            .recv()
            .expect("service alive")
            .expect_err("nothing cached to degrade onto");
        assert_eq!(err, ServeError::DeadlineExceeded);
        let snap = service.stats();
        assert_eq!(snap.shed_rejected, 1);
        assert_eq!(snap.shed_bracket, 0);
        // A generous deadline is never shed.
        let ok = service
            .client()
            .submit_with_deadline(
                Request {
                    model: "m".into(),
                    query: q,
                    theta: 5.0,
                },
                Some(Duration::from_secs(30)),
            )
            .recv()
            .expect("service alive")
            .expect("served");
        assert!(matches!(ok.source, EstimateSource::Computed { .. }));
        service.shutdown();
    }

    #[test]
    fn shed_answer_prefers_exact_hits_and_falls_back_to_brackets() {
        let (ds, est) = tiny_setup(33);
        let fx_tau_max = est.extractor().tau_max();
        let theta_of = {
            let theta_max = ds.theta_max;
            move |tau: usize| theta_max * (tau as f64 + 0.5) / (fx_tau_max as f64)
        };
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", est);
        let service = Service::start(registry, ServeConfig::default());
        let q = Arc::new(ds.records[5].clone());
        let lo = service.estimate("m", Arc::clone(&q), theta_of(2)).unwrap();
        let hi = service.estimate("m", Arc::clone(&q), theta_of(7)).unwrap();

        // Exact τ: full-fidelity cache answer even under saturation.
        let exact = service
            .shed_answer("m", &q, theta_of(2))
            .expect("model known")
            .expect("cached");
        assert_eq!(exact.source, EstimateSource::CacheExact);
        assert_eq!(exact.estimate.to_bits(), lo.estimate.to_bits());

        // Bracketed τ: degraded monotone-bounds answer.
        let shed = service
            .shed_answer("m", &q, theta_of(4))
            .expect("model known")
            .expect("bracketed");
        match shed.source {
            EstimateSource::ShedBracket { lo: l, hi: h } => {
                assert_eq!(l.to_bits(), lo.estimate.to_bits());
                assert_eq!(h.to_bits(), hi.estimate.to_bits());
            }
            other => panic!("expected shed bracket, got {other:?}"),
        }

        // A query the cache has never seen: nothing to shed onto.
        let cold = Arc::new(ds.records[50].clone());
        assert!(service
            .shed_answer("m", &cold, theta_of(4))
            .expect("model known")
            .is_none());
        assert!(matches!(
            service.shed_answer("ghost", &q, 1.0),
            Err(ServeError::UnknownModel(_))
        ));
        service.shutdown();
    }

    #[test]
    fn unknown_model_is_an_error_not_a_hang() {
        let (_, est) = tiny_setup(24);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("real", est);
        let service = Service::start(registry, unbatched_config());
        let q = Arc::new(Record::Bits(BitVec::zeros(4)));
        let err = service.estimate("ghost", q, 1.0).expect_err("must fail");
        assert_eq!(err, ServeError::UnknownModel("ghost".into()));
        assert_eq!(service.stats().errors, 1);
        service.shutdown();
    }

    #[test]
    fn pipelined_submissions_form_micro_batches() {
        let (ds, est) = tiny_setup(25);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", est);
        let service = Service::start(
            registry,
            ServeConfig {
                workers: 1,
                batch_max: 64,
                batch_window: Duration::from_millis(200),
                cache_capacity: 0,
                bound_tolerance: 0.0,
                cache_curve_points: 0,
                kernel_threads: 1,
                kernel_backend: None,
                ..ServeConfig::default()
            },
        );
        // 16 distinct queries submitted before any response is drained: the
        // lone worker's first recv starts the window and the rest arrive
        // well within it, forming a single micro-batch.
        let receivers: Vec<_> = (0..16)
            .map(|i| {
                service.submit(Request {
                    model: "m".into(),
                    query: Arc::new(ds.records[i].clone()),
                    theta: 5.0,
                })
            })
            .collect();
        for rx in receivers {
            let resp = rx.recv().expect("worker alive").expect("served");
            match resp.source {
                EstimateSource::Computed { batch_size } => assert!(batch_size > 1),
                other => panic!("cache disabled, expected computed: {other:?}"),
            }
        }
        let snap = service.stats();
        assert_eq!(snap.batches, 1, "expected one micro-batch");
        assert!((snap.mean_batch_size() - 16.0).abs() < 1e-9);
        service.shutdown();
    }

    #[test]
    fn duplicate_requests_in_one_batch_coalesce() {
        let (ds, est) = tiny_setup(27);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", est);
        let service = Service::start(
            registry,
            ServeConfig {
                workers: 1,
                batch_max: 64,
                batch_window: Duration::from_millis(200),
                cache_capacity: 0, // coalescing is intra-batch, not the cache
                bound_tolerance: 0.0,
                cache_curve_points: 0,
                kernel_threads: 1,
                kernel_backend: None,
                ..ServeConfig::default()
            },
        );
        let q = Arc::new(ds.records[2].clone());
        let receivers: Vec<_> = (0..8)
            .map(|_| {
                service.submit(Request {
                    model: "m".into(),
                    query: Arc::clone(&q),
                    theta: 5.0,
                })
            })
            .collect();
        let responses: Vec<Response> = receivers
            .into_iter()
            .map(|rx| rx.recv().expect("worker alive").expect("served"))
            .collect();
        let computed = responses
            .iter()
            .filter(|r| matches!(r.source, EstimateSource::Computed { .. }))
            .count();
        let coalesced = responses
            .iter()
            .filter(|r| r.source == EstimateSource::Coalesced)
            .count();
        assert_eq!((computed, coalesced), (1, 7));
        let first = responses[0].estimate.to_bits();
        assert!(responses.iter().all(|r| r.estimate.to_bits() == first));
        let snap = service.stats();
        assert_eq!(snap.batches, 1);
        assert!(
            (snap.mean_batch_size() - 1.0).abs() < 1e-9,
            "one unique row"
        );
        assert_eq!(snap.coalesced, 7);
        service.shutdown();
    }

    #[test]
    fn shutdown_then_estimate_reports_stopped() {
        let (ds, est) = tiny_setup(26);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("m", est);
        let service = Service::start(Arc::clone(&registry), unbatched_config());
        let client = service.client();
        let q = Arc::new(ds.records[0].clone());
        assert!(client.estimate("m", Arc::clone(&q), 2.0).is_ok());
        service.shutdown();
        assert_eq!(
            client.estimate("m", q, 2.0).expect_err("stopped"),
            ServeError::ServiceStopped
        );
    }
}
