//! Debug-build lock witness: runtime enforcement of the static lock order.
//!
//! `cardest-lint`'s cross-file lock-order pass proves the workspace's
//! lock-acquisition graph is cycle-free *as written*; this module enforces
//! the same discipline *as executed*, so a refactor that introduces a
//! nesting the lint's resolver cannot see (trait objects, callbacks,
//! channels handing guards across threads) still explodes loudly in every
//! debug/test run instead of deadlocking in production.
//!
//! Every tracked lock has a static rank in [`LOCK_RANKS`]. A thread may
//! only acquire locks in strictly increasing rank order; [`acquire`] pushes
//! the rank onto a thread-local stack and panics in debug builds if the
//! order is violated. In release builds the witness compiles to nothing —
//! `acquire` returns a zero-sized guard and touches no thread-local.
//!
//! Locks owned by `cardest-obs` (the trace ring and slow-query log) cannot
//! call this module directly — obs sits below serve in the dependency
//! graph — so [`install_obs_witness`] registers two `fn` pointers with
//! obs's [`cardest_obs::witness`] hook and their acquisitions land on the
//! same thread-local stack as everything else.
//!
//! [`LOCK_RANKS`] is the single rank table. It deliberately names locks by
//! the same ids the lint emits (`crate::Struct.field`), and the
//! `lockwitness` integration test re-runs the lint's graph pass over this
//! workspace and fails if the table is missing a lock or orders any edge
//! backwards — so the static analysis and the runtime witness cannot
//! drift apart.

#[cfg(debug_assertions)]
use std::cell::RefCell;

/// Rank table for every lock the lint discovers in this workspace, ordered
/// outermost-first along the request path: connection bookkeeping → job
/// queue → model registry → estimate cache → stats → trace ring/slow log →
/// metrics registry. Ids match the lint's `lock_graph` node ids.
pub const LOCK_RANKS: &[(&str, u16)] = &[
    ("serve::NetServer.conn_joins", 0),
    ("serve::service.rx", 1),
    ("serve::ModelRegistry.models", 2),
    ("serve::EstimateCache.shards", 3),
    ("serve::ServiceStats.clients", 4),
    ("obs::Observer.ring", 5),
    ("obs::Observer.slow", 6),
    ("core::Registry.live", 7),
];

/// The locks the witness tracks. The serve-owned locks are instrumented
/// directly at their `.lock()` sites; the obs-owned locks are reported
/// through the [`cardest_obs::witness`] callback hook installed by
/// [`install_obs_witness`] (obs cannot depend on serve, so it calls back
/// through two `fn` pointers instead). `core::Registry.live` remains
/// rank-table-only: core exposes no hook and its lock is a leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackedLock {
    /// `NetServer.conn_joins` — rank 0.
    ConnJoins,
    /// The worker-shared job receiver (`service.rx`) — rank 1.
    JobQueue,
    /// `ModelRegistry.models` — rank 2.
    RegistryModels,
    /// One `EstimateCache` shard — rank 3 (shards of one cache are never
    /// nested, so they share a rank).
    CacheShard,
    /// `ServiceStats.clients` — rank 4.
    StatsClients,
    /// `obs::Observer.ring` (sampled-trace ring) — rank 5, via the hook.
    ObsRing,
    /// `obs::Observer.slow` (slow-query log) — rank 6, via the hook.
    ObsSlow,
}

impl TrackedLock {
    #[cfg(debug_assertions)]
    fn rank(self) -> u16 {
        let id = match self {
            TrackedLock::ConnJoins => "serve::NetServer.conn_joins",
            TrackedLock::JobQueue => "serve::service.rx",
            TrackedLock::RegistryModels => "serve::ModelRegistry.models",
            TrackedLock::CacheShard => "serve::EstimateCache.shards",
            TrackedLock::StatsClients => "serve::ServiceStats.clients",
            TrackedLock::ObsRing => "obs::Observer.ring",
            TrackedLock::ObsSlow => "obs::Observer.slow",
        };
        // The table is tiny and const; a linear scan at debug-only call
        // sites is cheaper than keeping a second rank column in sync.
        match LOCK_RANKS.iter().find(|(n, _)| *n == id) {
            Some(&(_, r)) => r,
            None => unreachable!("every TrackedLock id is in LOCK_RANKS"),
        }
    }

    #[cfg(debug_assertions)]
    fn name(self) -> &'static str {
        match self {
            TrackedLock::ConnJoins => "NetServer.conn_joins",
            TrackedLock::JobQueue => "service.rx",
            TrackedLock::RegistryModels => "ModelRegistry.models",
            TrackedLock::CacheShard => "EstimateCache.shards",
            TrackedLock::StatsClients => "ServiceStats.clients",
            TrackedLock::ObsRing => "Observer.ring",
            TrackedLock::ObsSlow => "Observer.slow",
        }
    }
}

/// Bridge the `cardest-obs` witness hook onto this witness: after this call
/// every `Observer` trace-ring / slow-log lock acquisition participates in
/// the same thread-local rank check as the serve-owned locks. Safe to call
/// more than once (the hook is a process-wide `OnceLock`; the first install
/// wins and later calls are no-ops). Release builds install nothing — the
/// bracket in obs stays two dead branches.
pub fn install_obs_witness() {
    #[cfg(debug_assertions)]
    {
        fn tracked(lock: cardest_obs::ObsLock) -> TrackedLock {
            match lock {
                cardest_obs::ObsLock::Ring => TrackedLock::ObsRing,
                cardest_obs::ObsLock::Slow => TrackedLock::ObsSlow,
            }
        }
        fn hook_acquire(lock: cardest_obs::ObsLock) {
            // The obs bracket is its own RAII pair: the release callback
            // pops, so forget the guard here rather than double-popping.
            std::mem::forget(acquire(tracked(lock)));
        }
        fn hook_release(lock: cardest_obs::ObsLock) {
            let rank = tracked(lock).rank();
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&r| r == rank) {
                    held.remove(pos);
                }
            });
        }
        cardest_obs::install_witness(cardest_obs::WitnessHook {
            acquire: hook_acquire,
            release: hook_release,
        });
    }
}

#[cfg(debug_assertions)]
thread_local! {
    /// Ranks of tracked locks this thread currently holds, oldest first.
    static HELD: RefCell<Vec<u16>> = const { RefCell::new(Vec::new()) };
}

/// Witness guard: declare it on the line *before* the real `.lock()` call,
/// so the real guard (declared later) drops first and the witness pops
/// after the lock is actually released.
#[must_use = "the witness must outlive the lock guard it protects"]
pub struct HeldLock {
    #[cfg(debug_assertions)]
    rank: u16,
}

/// Record (debug builds) that the current thread is about to acquire
/// `lock`; panics if a lock of equal or higher rank is already held by
/// this thread. Release builds: a free no-op.
#[inline]
pub fn acquire(lock: TrackedLock) -> HeldLock {
    #[cfg(debug_assertions)]
    {
        let rank = lock.rank();
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&top) = held.last() {
                assert!(
                    rank > top,
                    "lock-order violation: acquiring `{}` (rank {rank}) while holding a lock \
                     of rank {top}; see lockwitness::LOCK_RANKS for the required order",
                    lock.name(),
                );
            }
            held.push(rank);
        });
        HeldLock { rank }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = lock;
        HeldLock {}
    }
}

#[cfg(debug_assertions)]
impl Drop for HeldLock {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Pop this guard's own entry (the last occurrence of its rank):
            // guards usually drop LIFO, but an early `drop(inner_guard)`
            // must not corrupt the stack for outer witnesses.
            if let Some(pos) = held.iter().rposition(|&r| r == self.rank) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_unique_and_table_is_sorted() {
        for w in LOCK_RANKS.windows(2) {
            assert!(w[0].1 < w[1].1, "ranks must be strictly increasing");
        }
    }

    #[test]
    fn ascending_acquisition_is_allowed() {
        let _a = acquire(TrackedLock::ConnJoins);
        let _b = acquire(TrackedLock::RegistryModels);
        let _c = acquire(TrackedLock::StatsClients);
    }

    #[test]
    fn reacquisition_after_release_is_allowed() {
        {
            let _a = acquire(TrackedLock::StatsClients);
        }
        let _b = acquire(TrackedLock::RegistryModels);
    }

    #[test]
    fn out_of_order_drop_keeps_the_stack_consistent() {
        let a = acquire(TrackedLock::RegistryModels);
        let b = acquire(TrackedLock::CacheShard);
        drop(a); // early release of the outer witness
        drop(b);
        let _c = acquire(TrackedLock::ConnJoins); // stack must be empty again
    }

    #[test]
    fn obs_ranks_extend_the_serve_ranks_in_order() {
        let _a = acquire(TrackedLock::StatsClients);
        let _b = acquire(TrackedLock::ObsRing);
        let _c = acquire(TrackedLock::ObsSlow);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn descending_acquisition_panics_in_debug() {
        let _a = acquire(TrackedLock::StatsClients);
        let _b = acquire(TrackedLock::RegistryModels);
        // In release builds the witness is a no-op, so this test passing
        // without a panic is exactly the claim being verified there.
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn same_rank_reacquisition_panics_in_debug() {
        let _a = acquire(TrackedLock::CacheShard);
        let _b = acquire(TrackedLock::CacheShard);
    }
}
