//! Workload → training tensors.
//!
//! Converts a labelled [`Workload`] through a [`FeatureExtractor`] into the
//! matrices the trainer consumes:
//!
//! * `x` — one row per query: the binary representation as `f32`;
//! * `cum` — cumulative cardinality targets at every `τ ∈ [0, τ_max]`;
//! * `dist` — per-distance targets `c_i = cum(i) − cum(i−1)` (§3.3's
//!   incremental decomposition, exact because labels are full curves);
//! * `p_tau` — the empirical threshold distribution `P(τ)` of Eq. 2,
//!   estimated by pushing the validation grid through `h_thr` (§6.2).

use cardest_data::Workload;
use cardest_fx::FeatureExtractor;
use cardest_nn::Matrix;

/// The tensor form of a labelled workload.
#[derive(Clone, Debug)]
pub struct TrainTensors {
    /// `n × d` binary representations.
    pub x: Matrix,
    /// `n × (τ_max+1)` cumulative targets.
    pub cum: Matrix,
    /// `n × (τ_max+1)` per-distance targets.
    pub dist: Matrix,
    /// Number of decoders (`τ_max + 1`).
    pub n_out: usize,
}

impl TrainTensors {
    pub fn n_examples(&self) -> usize {
        self.x.rows()
    }

    /// Gathers a batch by row indices.
    pub fn batch(&self, idx: &[usize]) -> TrainTensors {
        TrainTensors {
            x: self.x.gather_rows(idx),
            cum: self.cum.gather_rows(idx),
            dist: self.dist.gather_rows(idx),
            n_out: self.n_out,
        }
    }
}

/// Maps a cardinality curve over the threshold grid to cumulative targets per
/// τ. Multiple grid thresholds can map to one τ; the *largest* admissible
/// threshold defines the bucket's cumulative count, and τ values the grid
/// never hits inherit the previous bucket (carry-forward), making the
/// per-distance increments well-defined and non-negative.
pub fn cumulative_per_tau(
    fx: &dyn FeatureExtractor,
    thresholds: &[f64],
    cards: &[u32],
    n_out: usize,
) -> Vec<f32> {
    let mut cum = vec![f32::NAN; n_out];
    for (&theta, &c) in thresholds.iter().zip(cards) {
        let tau = fx.map_threshold(theta).min(n_out - 1);
        // Later (larger) thresholds overwrite: grid ascends, so the last
        // write per bucket is the largest θ mapping to it.
        cum[tau] = c as f32;
    }
    let mut prev = 0.0f32;
    for slot in &mut cum {
        if slot.is_nan() {
            *slot = prev;
        } else {
            // Guard the invariant against any non-monotone labels.
            *slot = slot.max(prev);
        }
        prev = *slot;
    }
    cum
}

/// Builds the tensors for a workload.
pub fn prepare_tensors(workload: &Workload, fx: &dyn FeatureExtractor) -> TrainTensors {
    let n = workload.len();
    let d = fx.dim();
    let n_out = fx.tau_max() + 1;
    let mut x = Matrix::zeros(n, d);
    let mut cum = Matrix::zeros(n, n_out);
    let mut dist = Matrix::zeros(n, n_out);
    for (r, lq) in workload.queries.iter().enumerate() {
        fx.extract(&lq.query).write_f32(x.row_mut(r));
        let c = cumulative_per_tau(fx, &workload.thresholds, &lq.cards, n_out);
        let crow = cum.row_mut(r);
        crow.copy_from_slice(&c);
        let drow = dist.row_mut(r);
        drow[0] = c[0];
        for i in 1..n_out {
            drow[i] = c[i] - c[i - 1];
        }
    }
    TrainTensors {
        x,
        cum,
        dist,
        n_out,
    }
}

/// Empirical `P(τ)` over a workload's threshold grid (Eq. 2's expectation
/// weights). Uniform thresholds in `[0, θ_max]` are *not* uniform in τ for
/// non-linear transforms (e.g. Euclidean, §4.4), which this corrects.
pub fn tau_distribution(fx: &dyn FeatureExtractor, thresholds: &[f64], n_out: usize) -> Vec<f32> {
    let mut p = vec![0.0f32; n_out];
    for &theta in thresholds {
        p[fx.map_threshold(theta).min(n_out - 1)] += 1.0;
    }
    let total: f32 = p.iter().sum();
    if total > 0.0 {
        p.iter_mut().for_each(|v| *v /= total);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_fx::build_extractor;

    fn setup() -> (cardest_data::Dataset, Box<dyn FeatureExtractor>, Workload) {
        let ds = hm_imagenet(SynthConfig::new(150, 2));
        let fx = build_extractor(&ds, 20, 5);
        let wl = Workload::sample_from(&ds, 0.2, 10, 3);
        (ds, fx, wl)
    }

    #[test]
    fn tensors_have_consistent_shapes() {
        let (_, fx, wl) = setup();
        let t = prepare_tensors(&wl, fx.as_ref());
        assert_eq!(t.x.rows(), wl.len());
        assert_eq!(t.x.cols(), fx.dim());
        assert_eq!(t.cum.cols(), fx.tau_max() + 1);
        assert_eq!(t.dist.shape(), t.cum.shape());
    }

    #[test]
    fn dist_rows_sum_to_final_cumulative() {
        let (_, fx, wl) = setup();
        let t = prepare_tensors(&wl, fx.as_ref());
        for r in 0..t.n_examples() {
            let sum: f32 = t.dist.row(r).iter().sum();
            let last = *t.cum.row(r).last().expect("non-empty row");
            assert!((sum - last).abs() < 1e-3, "row {r}: {sum} vs {last}");
        }
    }

    #[test]
    fn cumulative_targets_are_monotone_and_dist_nonnegative() {
        let (_, fx, wl) = setup();
        let t = prepare_tensors(&wl, fx.as_ref());
        for r in 0..t.n_examples() {
            let row = t.cum.row(r);
            assert!(
                row.windows(2).all(|w| w[0] <= w[1]),
                "row {r} not monotone: {row:?}"
            );
            assert!(t.dist.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn cumulative_per_tau_carries_forward() {
        let (_, fx, _) = setup();
        // A sparse grid that skips τ values.
        let thresholds = [0.0, 10.0, 20.0];
        let cards = [1, 7, 30];
        let c = cumulative_per_tau(fx.as_ref(), &thresholds, &cards, fx.tau_max() + 1);
        assert_eq!(c[0], 1.0);
        assert_eq!(*c.last().expect("non-empty"), 30.0);
        assert!(c.windows(2).all(|w| w[0] <= w[1]));
        // Buckets between hits repeat the previous value.
        let tau_mid = fx.map_threshold(10.0);
        assert_eq!(c[tau_mid - 1], 1.0, "carry-forward failed: {c:?}");
    }

    #[test]
    fn tau_distribution_sums_to_one() {
        let (ds, fx, wl) = setup();
        let p = tau_distribution(fx.as_ref(), &wl.thresholds, fx.tau_max() + 1);
        let total: f32 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        // θ = 0 maps to τ = 0, so bucket 0 is always populated.
        assert!(p[0] > 0.0, "{}", ds.name);
    }

    #[test]
    fn batch_gathers_rows() {
        let (_, fx, wl) = setup();
        let t = prepare_tensors(&wl, fx.as_ref());
        let b = t.batch(&[2, 0]);
        assert_eq!(b.n_examples(), 2);
        assert_eq!(b.x.row(0), t.x.row(2));
        assert_eq!(b.cum.row(1), t.cum.row(0));
    }
}
