//! The Estimator API: prepared queries, batch-first estimation, and
//! threshold-curve results — shared by CardNet and every baseline — plus the
//! trained-CardNet wrapper.
//!
//! # The prepare → curve → estimate flow
//!
//! The paper's interface is `ĉ(x, θ)`, monotone in θ (Lemmas 1–2). Every
//! consumer that sweeps θ — GPH threshold allocation, accuracy sweeps, the
//! serving cache's bracket probes — used to pay for feature extraction and
//! the encoder once *per threshold*. The v2 API splits the work along its
//! natural seams:
//!
//! 1. [`CardinalityEstimator::prepare`] runs the query-only work once
//!    (feature extraction `h_rec`; estimators may lazily attach more cached
//!    state, e.g. CardNet's encoder embeddings) and returns a
//!    [`PreparedQuery`] that is reusable across thresholds *and* models;
//! 2. [`CardinalityEstimator::curve`] returns the whole threshold curve
//!    `ĉ_0 … ĉ_{h(θ)}` as a [`CardinalityCurve`] — one call answers every
//!    threshold up to θ;
//! 3. [`CardinalityEstimator::estimate`] / [`estimate_batch`] have default
//!    implementations in terms of `prepare` + `curve`, so scalar call sites
//!    keep working unchanged, and [`Estimate`] carries monotone `[lo, hi]`
//!    bounds where they matter (the serving cache's bracket answers).
//!
//! Implementors must override **at least one** of `estimate` or `curve`
//! (their defaults are defined in terms of each other). A τ-sweep through a
//! prepared query is bit-identical to calling `estimate` per threshold — the
//! property tests in `tests/estimator_api.rs` pin this down.
//!
//! [`estimate_batch`]: CardinalityEstimator::estimate_batch

use crate::model::CardNetModel;
use crate::train::Trainer;
use cardest_data::{BitVec, Record};
use cardest_fx::FeatureExtractor;
use cardest_nn::{Matrix, Parallelism, ParamStore};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Hands out process-unique owner ids for per-estimator cached state inside
/// a [`PreparedQuery`]. Estimators that cache derived state grab one id at
/// construction so a prepared query can never serve another instance's cache.
pub fn next_instance_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    // ordering: relaxed suffices for a unique-id counter — atomicity alone
    // guarantees distinct ids and nothing else synchronizes through it.
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A query with its per-query work done once, reusable across thresholds and
/// models.
///
/// Always carries the original [`Record`] (estimators that consume records
/// directly — samplers, KDE — keep working); optionally carries the
/// extractor's bit vector (`h_rec(x)`, filled in by extractor-backed
/// estimators); and offers one lazily-initialized slot of estimator-specific
/// state (e.g. CardNet's encoder embeddings, a sampler's sorted distances)
/// keyed by the owning estimator's instance id.
pub struct PreparedQuery {
    record: Arc<Record>,
    /// `(owner instance id, h_rec(x))` — owner-keyed like `state`, because
    /// two extractors of equal dimensionality (e.g. LSH families drawn from
    /// different seeds) produce different bits for the same record.
    bits: Option<(u64, BitVec)>,
    state: OnceLock<(u64, Arc<dyn Any + Send + Sync>)>,
}

impl PreparedQuery {
    /// Wraps a record with no precomputed features (the default `prepare`).
    pub fn from_record(record: Record) -> PreparedQuery {
        PreparedQuery::from_shared(Arc::new(record))
    }

    /// Wraps an already-shared record without copying its payload — the
    /// serving hot path hands its `Arc<Record>` straight through.
    pub fn from_shared(record: Arc<Record>) -> PreparedQuery {
        PreparedQuery {
            record,
            bits: None,
            state: OnceLock::new(),
        }
    }

    /// Wraps a record together with the bit vector `owner`'s extractor
    /// produced for it.
    pub fn with_bits(record: Record, owner: u64, bits: BitVec) -> PreparedQuery {
        PreparedQuery::shared_with_bits(Arc::new(record), owner, bits)
    }

    /// [`PreparedQuery::with_bits`] over an already-shared record.
    pub fn shared_with_bits(record: Arc<Record>, owner: u64, bits: BitVec) -> PreparedQuery {
        PreparedQuery {
            record,
            bits: Some((owner, bits)),
            state: OnceLock::new(),
        }
    }

    /// The original query record.
    pub fn record(&self) -> &Record {
        &self.record
    }

    /// The extracted bit vector, whoever prepared it — for consumers in the
    /// preparing estimator's own pipeline (e.g. the serving layer's query
    /// fingerprint). Model inputs should go through
    /// [`PreparedQuery::bits_for`] instead.
    pub fn bits(&self) -> Option<&BitVec> {
        self.bits.as_ref().map(|(_, b)| b)
    }

    /// The extracted bit vector, only if `owner` is the estimator that
    /// extracted it — a prepared query reused across models never serves
    /// another extractor's features.
    pub fn bits_for(&self, owner: u64) -> Option<&BitVec> {
        match &self.bits {
            Some((id, bits)) if *id == owner => Some(bits),
            _ => None,
        }
    }

    /// Per-estimator cached state, computed at most once per (query, owner).
    ///
    /// The slot is claimed by the first owner to initialize it. If a
    /// *different* estimator already claimed it (a prepared query being
    /// reused across models), `init` runs fresh and the result is simply not
    /// cached — correctness over caching: state computed under one model's
    /// parameters must never be decoded under another's.
    pub fn state<T: Any + Send + Sync>(&self, owner: u64, init: impl FnOnce() -> T) -> Arc<T> {
        if let Some((id, any)) = self.state.get() {
            if *id == owner {
                if let Ok(t) = Arc::clone(any).downcast::<T>() {
                    return t;
                }
            }
            return Arc::new(init());
        }
        let value = Arc::new(init());
        let stored: Arc<dyn Any + Send + Sync> = Arc::clone(&value) as _;
        // A racing thread may have filled the slot first; both computed the
        // same deterministic value, so returning ours is equivalent.
        let _ = self.state.set((owner, stored));
        value
    }
}

/// A cardinality estimate with optional monotone bounds and provenance —
/// replaces bare `f64` where the bracket matters (the serving cache answers
/// misses between two cached τ values from exactly these bounds).
#[derive(Clone, Debug, PartialEq)]
#[must_use]
pub struct Estimate {
    /// The estimate itself.
    pub value: f64,
    /// Monotone lower bound: `lo ≤ true model value`.
    pub lo: f64,
    /// Monotone upper bound: `true model value ≤ hi`.
    pub hi: f64,
    /// Name of the producing estimator, when known.
    pub source: Option<Arc<str>>,
}

impl Estimate {
    /// An exact (degenerate-bracket) estimate: `lo == value == hi`.
    pub fn exact(value: f64) -> Estimate {
        Estimate {
            value,
            lo: value,
            hi: value,
            source: None,
        }
    }

    /// An estimate known only through a monotone bracket `[lo, hi]` (two
    /// curve points on either side of the queried threshold). A degenerate
    /// bracket (`lo == hi`) pins the value exactly — monotone curves cannot
    /// dip between equal endpoints; otherwise the midpoint is reported.
    pub fn from_bracket(lo: f64, hi: f64) -> Estimate {
        debug_assert!(lo <= hi, "inverted bracket [{lo}, {hi}]");
        Estimate {
            value: if lo == hi { lo } else { 0.5 * (lo + hi) },
            lo,
            hi,
            source: None,
        }
    }

    /// Tags the producing estimator.
    pub fn with_source(mut self, source: Arc<str>) -> Estimate {
        self.source = Some(source);
        self
    }

    /// Whether the bounds pin the value exactly (`lo == hi`).
    pub fn is_pinned(&self) -> bool {
        self.lo == self.hi
    }

    /// Bracket width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the bracket is tight enough to answer without the model:
    /// `hi − lo ≤ tolerance · max(hi, 1)` (relative slack, floored at one
    /// record so tiny cardinalities don't demand impossible precision).
    pub fn within_tolerance(&self, tolerance: f64) -> bool {
        self.width() <= tolerance * self.hi.max(1.0)
    }
}

/// The threshold curve `ĉ_0 … ĉ_{h(θ)}`: one estimate per transformed
/// threshold step, as a first-class result.
///
/// For estimators with a native threshold discretization (CardNet's τ grid,
/// histogram buckets), `values()[i]` is exactly what `estimate` returns at
/// any θ' with [`CardinalityEstimator::threshold_step`]`(θ') == i` — the
/// indexing contract the GPH allocator relies on. Estimators without a
/// discretization return single-point curves (`[ĉ(θ)]`).
#[derive(Clone, Debug, PartialEq)]
#[must_use]
pub struct CardinalityCurve {
    values: Vec<f64>,
}

impl CardinalityCurve {
    /// Wraps explicit per-step values; must be non-empty.
    pub fn from_values(values: Vec<f64>) -> CardinalityCurve {
        assert!(!values.is_empty(), "a curve has at least one point");
        CardinalityCurve { values }
    }

    /// A single-point curve (estimators without a threshold discretization).
    pub fn point(value: f64) -> CardinalityCurve {
        CardinalityCurve {
            values: vec![value],
        }
    }

    /// Cumulative curve from per-distance f32 increments, accumulated
    /// left-to-right in f64 — the exact arithmetic of
    /// [`CardNetModel::infer_sum`], so `last()` is bit-identical to the
    /// scalar path.
    pub fn from_f32_increments(dist: &[f32]) -> CardinalityCurve {
        let mut values = Vec::with_capacity(dist.len());
        let mut acc = 0.0f64;
        for &v in dist {
            acc += f64::from(v);
            values.push(acc);
        }
        CardinalityCurve::from_values(values)
    }

    /// Non-cumulative curve: each step is a direct prediction (the
    /// −incremental ablation, which forfeits monotonicity).
    pub fn from_f32_direct(dist: &[f32]) -> CardinalityCurve {
        CardinalityCurve::from_values(dist.iter().map(|&v| f64::from(v)).collect())
    }

    /// The value at the queried threshold — what `estimate` returns.
    pub fn last(&self) -> f64 {
        *self.values.last().expect("curves are non-empty")
    }

    /// The value at `step`, clamped to the final point.
    pub fn value_at(&self, step: usize) -> f64 {
        self.values[step.min(self.values.len() - 1)]
    }

    /// All per-step values, index = transformed threshold step.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Never true — kept for API completeness alongside `len`.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the curve is non-decreasing (the monotonicity guarantee as
    /// observed data).
    pub fn is_non_decreasing(&self) -> bool {
        self.values.windows(2).all(|w| w[1] >= w[0])
    }

    /// The monotone bracket between two steps of this curve.
    pub fn bracket(&self, lo_step: usize, hi_step: usize) -> Estimate {
        Estimate::from_bracket(self.value_at(lo_step), self.value_at(hi_step))
    }
}

/// A cardinality estimator for similarity selection (Problem 1 of the
/// paper): `estimate(x, θ) ≈ |{ y ∈ D : f(x, y) ≤ θ }|`.
///
/// Implementors **must override at least one of [`estimate`] or [`curve`]**:
/// their defaults are defined in terms of each other so that both legacy
/// scalar estimators and curve-native estimators implement just one method —
/// the cost of that convenience is that an impl overriding *neither*
/// compiles but recurses infinitely on first use (the compiler cannot
/// express "one of these two"), so treat a stack overflow in a fresh
/// estimator as this contract violation. Estimators with per-query work
/// worth reusing (feature extraction, encoder passes, sample distances)
/// should also override [`prepare`].
///
/// [`estimate`]: CardinalityEstimator::estimate
/// [`curve`]: CardinalityEstimator::curve
/// [`prepare`]: CardinalityEstimator::prepare
pub trait CardinalityEstimator: Send + Sync {
    /// Runs the per-query work once. The default wraps the record with no
    /// precomputed features.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        PreparedQuery::from_record(query.clone())
    }

    /// [`CardinalityEstimator::prepare`] over an already-shared record: the
    /// prepared query holds the `Arc` instead of deep-cloning the payload.
    /// The serving hot path calls this once per request.
    fn prepare_shared(&self, query: &Arc<Record>) -> PreparedQuery {
        self.prepare(query)
    }

    /// The threshold curve up to (and including) θ. The final point is the
    /// estimate at θ, bit-for-bit equal to [`CardinalityEstimator::estimate`].
    /// Default: a single-point curve through `estimate`.
    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        CardinalityCurve::point(self.estimate(prepared.record(), theta))
    }

    /// `h_thr`: maps θ to this estimator's curve step, monotone in θ.
    ///
    /// Contract for estimators returning a non-trivial step (> 0 for large
    /// θ): for any θ' ≤ θ, `curve(p, θ).value_at(threshold_step(θ'))`
    /// equals `estimate(q, θ')` bit for bit. Estimators without a native
    /// discretization keep every θ at step 0 (single-point curves), which
    /// consumers must treat as "no curve indexing available".
    fn threshold_step(&self, _theta: f64) -> usize {
        0
    }

    /// The estimated cardinality (non-negative; not necessarily integral).
    /// Default: `prepare` + `curve`, reading the final point.
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        self.curve(&self.prepare(query), theta).last()
    }

    /// The estimate at θ from an already-prepared query — the per-threshold
    /// call of a τ-sweep (`prepare` once, this per θ).
    fn estimate_prepared(&self, prepared: &PreparedQuery, theta: f64) -> f64 {
        self.curve(prepared, theta).last()
    }

    /// Batch-first estimation: one [`Estimate`] per `(prepared[i],
    /// thetas[i])` pair. The default loops `curve`; batched models override
    /// this to run their kernel once for the whole batch (the serving worker
    /// pool feeds micro-batches straight through here).
    fn estimate_batch(&self, prepared: &[&PreparedQuery], thetas: &[f64]) -> Vec<Estimate> {
        assert_eq!(
            prepared.len(),
            thetas.len(),
            "estimate_batch: {} queries vs {} thresholds",
            prepared.len(),
            thetas.len()
        );
        let source: Arc<str> = self.name().into();
        prepared
            .iter()
            .zip(thetas)
            .map(|(p, &theta)| {
                Estimate::exact(self.curve(p, theta).last()).with_source(Arc::clone(&source))
            })
            .collect()
    }

    /// Full threshold curves (θ = ∞, clamped by `h_thr` to each estimator's
    /// maximum step) for a batch of prepared queries. Default loops `curve`;
    /// batched models override to run one kernel for the whole batch — the
    /// serving layer's curve-seeding mode feeds micro-batches through here.
    fn curve_batch(&self, prepared: &[&PreparedQuery]) -> Vec<CardinalityCurve> {
        prepared
            .iter()
            .map(|p| self.curve(p, f64::INFINITY))
            .collect()
    }

    /// [`CardinalityEstimator::estimate_batch`] with a kernel budget: a
    /// worker-count hint plus an optionally pinned
    /// [`cardest_nn::KernelBackend`]. Estimators whose batched kernel can
    /// exploit it (bit-identically) override this; the default ignores the
    /// hint — correct for every estimator, since threading and backend
    /// choice are optimizations, never semantics. The serve worker pool
    /// plumbs `ServeConfig::kernel_parallelism()` through here.
    fn estimate_batch_par(
        &self,
        prepared: &[&PreparedQuery],
        thetas: &[f64],
        par: Parallelism,
    ) -> Vec<Estimate> {
        let _ = par;
        self.estimate_batch(prepared, thetas)
    }

    /// [`CardinalityEstimator::curve_batch`] with a kernel budget
    /// (see [`CardinalityEstimator::estimate_batch_par`]).
    fn curve_batch_par(
        &self,
        prepared: &[&PreparedQuery],
        par: Parallelism,
    ) -> Vec<CardinalityCurve> {
        let _ = par;
        self.curve_batch(prepared)
    }

    /// Display name matching the paper's tables (e.g. `CardNet-A`, `DB-US`).
    fn name(&self) -> String;

    /// Serialized parameter footprint in bytes (Table 9's "model size").
    fn size_bytes(&self) -> usize;

    /// Whether the estimator guarantees monotonicity w.r.t. the threshold
    /// (and therefore a non-decreasing [`CardinalityCurve`]).
    fn is_monotonic(&self) -> bool {
        false
    }
}

/// Writes the `h_rec` features of a prepared query into `out` (length =
/// `fx.dim()`): reuses the prepared bit vector when `owner` extracted it
/// (and the dimensionality matches), re-extracts with `fx` — counting the
/// extraction — otherwise. The shared fallback rule for every
/// extractor-backed estimator consuming a query prepared elsewhere.
pub fn prepared_features_into(
    fx: &dyn FeatureExtractor,
    owner: u64,
    prepared: &PreparedQuery,
    out: &mut [f32],
) {
    match prepared.bits_for(owner) {
        Some(bits) if bits.len() == out.len() => bits.write_f32(out),
        _ => {
            crate::metrics::record_extraction();
            fx.extract(prepared.record()).write_f32(out);
        }
    }
}

/// [`prepared_features_into`] as a `1 × dim` model-input matrix.
pub fn prepared_feature_matrix(
    fx: &dyn FeatureExtractor,
    owner: u64,
    prepared: &PreparedQuery,
) -> Matrix {
    let mut data = vec![0.0f32; fx.dim()];
    prepared_features_into(fx, owner, prepared, &mut data);
    Matrix::from_vec(1, fx.dim(), data)
}

/// A trained CardNet (or CardNet-A): feature extractor + regression model.
pub struct CardNetEstimator {
    fx: Box<dyn FeatureExtractor>,
    model: CardNetModel,
    store: ParamStore,
    accelerated: bool,
    /// Owner id for encoder state cached inside [`PreparedQuery`].
    prep_id: u64,
    /// Kernel worker budget for the encoder/batch paths. Threaded kernels
    /// are bit-identical to the scalar ones, so this is a throughput knob
    /// with no effect on estimates.
    par: Parallelism,
}

/// CardNet's cached per-query state: the full encoder output (`n_out ×
/// z_dim` embeddings), computed lazily on the first `curve` call so cheap
/// cache probes never pay for it.
struct CardNetPrepared {
    z_all: Matrix,
}

impl CardNetEstimator {
    /// Wraps the products of [`crate::train::train_cardnet`].
    pub fn from_trainer(fx: Box<dyn FeatureExtractor>, trainer: Trainer) -> Self {
        let accelerated = trainer.model.config.encoder == crate::model::EncoderKind::Accelerated;
        CardNetEstimator {
            fx,
            model: trainer.model,
            store: trainer.store,
            accelerated,
            prep_id: next_instance_id(),
            par: Parallelism::serial(),
        }
    }

    /// Sets the kernel worker budget for the encoder/batch paths (builder
    /// form). Estimates are bit-identical for any setting.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Sets the kernel worker budget in place.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// The configured kernel worker budget.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    pub fn model(&self) -> &CardNetModel {
        &self.model
    }

    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    pub fn extractor(&self) -> &dyn FeatureExtractor {
        self.fx.as_ref()
    }

    /// Per-distance estimates `ĉ_0 … ĉ_τ` for a query (diagnostics and the
    /// GPH case study's per-distance costing).
    pub fn estimate_per_distance(&self, query: &Record, theta: f64) -> Vec<f32> {
        let tau = self.fx.map_threshold(theta);
        let x = self.query_matrix(query);
        self.model.infer_dist(&self.store, &x, tau)
    }

    fn query_matrix(&self, query: &Record) -> Matrix {
        crate::metrics::record_extraction();
        let bits = self.fx.extract(query);
        Matrix::from_vec(1, bits.len(), bits.to_f32())
    }

    /// The cached (or freshly computed) encoder embeddings for a prepared
    /// query.
    fn embeddings(&self, prepared: &PreparedQuery) -> Arc<CardNetPrepared> {
        prepared.state(self.prep_id, || CardNetPrepared {
            z_all: self.model.encode_all_with(
                &self.store,
                &prepared_feature_matrix(self.fx.as_ref(), self.prep_id, prepared),
                self.par,
            ),
        })
    }

    /// Stacks the prepared queries' features into one `n × dim` model input.
    fn batch_feature_matrix(&self, prepared: &[&PreparedQuery]) -> Matrix {
        let d = self.fx.dim();
        let mut data = vec![0.0f32; prepared.len() * d];
        for (r, p) in prepared.iter().enumerate() {
            prepared_features_into(
                self.fx.as_ref(),
                self.prep_id,
                p,
                &mut data[r * d..(r + 1) * d],
            );
        }
        Matrix::from_vec(prepared.len(), d, data)
    }

    /// Shared body of `estimate_batch` / `estimate_batch_par`.
    fn estimate_batch_impl(
        &self,
        prepared: &[&PreparedQuery],
        thetas: &[f64],
        par: Parallelism,
    ) -> Vec<Estimate> {
        assert_eq!(
            prepared.len(),
            thetas.len(),
            "estimate_batch: {} queries vs {} thresholds",
            prepared.len(),
            thetas.len()
        );
        if prepared.is_empty() {
            return Vec::new();
        }
        let x = self.batch_feature_matrix(prepared);
        let dist = self.model.infer_dist_batch_with(&self.store, &x, par);
        let n_out = self.model.config.n_out;
        let incremental = self.model.config.incremental;
        let source: Arc<str> = CardinalityEstimator::name(self).into();
        thetas
            .iter()
            .enumerate()
            .map(|(r, &theta)| {
                let tau = self.fx.map_threshold(theta).min(n_out - 1);
                let value = if incremental {
                    let mut acc = 0.0f64;
                    for j in 0..=tau {
                        acc += f64::from(dist.get(r, j));
                    }
                    acc
                } else {
                    f64::from(dist.get(r, tau))
                };
                Estimate::exact(value).with_source(Arc::clone(&source))
            })
            .collect()
    }

    /// Shared body of `curve_batch` / `curve_batch_par`.
    fn curve_batch_impl(
        &self,
        prepared: &[&PreparedQuery],
        par: Parallelism,
    ) -> Vec<CardinalityCurve> {
        if prepared.is_empty() {
            return Vec::new();
        }
        let x = self.batch_feature_matrix(prepared);
        let dist = self.model.infer_dist_batch_with(&self.store, &x, par);
        let incremental = self.model.config.incremental;
        (0..prepared.len())
            .map(|r| {
                if incremental {
                    CardinalityCurve::from_f32_increments(dist.row(r))
                } else {
                    CardinalityCurve::from_f32_direct(dist.row(r))
                }
            })
            .collect()
    }
}

/// A borrowed view over a trainer's current model: lets update loops (§8)
/// evaluate mid-stream without consuming the trainer.
pub struct CardNetView<'a> {
    fx: &'a dyn FeatureExtractor,
    trainer: &'a Trainer,
    /// Owner id for prepared bits (views cache no encoder state).
    view_id: u64,
}

impl CardNetEstimator {
    /// Borrows a trainer as an estimator.
    pub fn from_trainer_ref<'a>(
        fx: &'a dyn FeatureExtractor,
        trainer: &'a Trainer,
    ) -> CardNetView<'a> {
        CardNetView {
            fx,
            trainer,
            view_id: next_instance_id(),
        }
    }
}

impl CardinalityEstimator for CardNetView<'_> {
    fn prepare(&self, query: &Record) -> PreparedQuery {
        crate::metrics::record_extraction();
        let bits = self.fx.extract(query);
        PreparedQuery::with_bits(query.clone(), self.view_id, bits)
    }

    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        // Views are transient (mid-training evaluation); they reuse prepared
        // bits but do not cache encoder state.
        let tau = self.threshold_step(theta);
        let x = prepared_feature_matrix(self.fx, self.view_id, prepared);
        let dist = self.trainer.model.infer_dist(&self.trainer.store, &x, tau);
        if self.trainer.model.config.incremental {
            CardinalityCurve::from_f32_increments(&dist)
        } else {
            CardinalityCurve::from_f32_direct(&dist)
        }
    }

    fn threshold_step(&self, theta: f64) -> usize {
        self.fx
            .map_threshold(theta)
            .min(self.trainer.model.config.n_out - 1)
    }

    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        crate::metrics::record_extraction();
        let tau = self.fx.map_threshold(theta);
        let bits = self.fx.extract(query);
        let x = Matrix::from_vec(1, bits.len(), bits.to_f32());
        self.trainer.model.infer_sum(&self.trainer.store, &x, tau)
    }

    fn name(&self) -> String {
        "CardNet(view)".into()
    }

    fn size_bytes(&self) -> usize {
        self.trainer.store.size_bytes()
    }

    fn is_monotonic(&self) -> bool {
        self.trainer.model.config.incremental
    }
}

impl CardinalityEstimator for CardNetEstimator {
    /// Extracts features once (`h_rec`). Encoder embeddings are attached
    /// lazily on the first `curve` call, so preparing for a cache probe
    /// costs one extraction and nothing else.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        crate::metrics::record_extraction();
        let bits = self.fx.extract(query);
        PreparedQuery::with_bits(query.clone(), self.prep_id, bits)
    }

    /// Hot-path variant: extracts once and shares the caller's `Arc` instead
    /// of deep-cloning the record.
    fn prepare_shared(&self, query: &Arc<Record>) -> PreparedQuery {
        crate::metrics::record_extraction();
        let bits = self.fx.extract(query);
        PreparedQuery::shared_with_bits(Arc::clone(query), self.prep_id, bits)
    }

    /// One encoder pass per prepared query (cached), decoders per τ: a
    /// k-threshold sweep costs 1 extraction + 1 encoder pass, not k.
    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let tau = self.threshold_step(theta);
        let state = self.embeddings(prepared);
        let dist = self.model.decode_prefix(&self.store, &state.z_all, tau);
        if self.model.config.incremental {
            CardinalityCurve::from_f32_increments(&dist)
        } else {
            CardinalityCurve::from_f32_direct(&dist)
        }
    }

    fn threshold_step(&self, theta: f64) -> usize {
        self.fx
            .map_threshold(theta)
            .min(self.model.config.n_out - 1)
    }

    /// Scalar fast path: evaluates only decoders `0..=τ` (the paper's
    /// `O((τ+1)|Φ|)` cost for the shared encoder) — cheaper than a full
    /// `curve` for one-shot estimates, bit-identical to `curve(…).last()`.
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let tau = self.fx.map_threshold(theta);
        let x = self.query_matrix(query);
        self.model.infer_sum(&self.store, &x, tau)
    }

    /// One batched kernel run for the whole batch: per-row arithmetic
    /// mirrors [`CardNetModel::infer_sum`] exactly (left-to-right f64 prefix
    /// sum over decoders `0..=τ`), so batched estimates are bit-identical to
    /// the scalar path — the invariant the serving layer's cache relies on.
    fn estimate_batch(&self, prepared: &[&PreparedQuery], thetas: &[f64]) -> Vec<Estimate> {
        self.estimate_batch_impl(prepared, thetas, self.par)
    }

    /// The batched kernel with an extra worker/backend budget (still
    /// bit-identical): the serving worker pool plumbs
    /// `ServeConfig::kernel_parallelism()` here.
    fn estimate_batch_par(
        &self,
        prepared: &[&PreparedQuery],
        thetas: &[f64],
        par: Parallelism,
    ) -> Vec<Estimate> {
        // Caller first: `Parallelism::max` keeps the left side's backend
        // pin, so a per-call override (e.g. `ServeConfig::kernel_backend`)
        // beats the estimator's own setting; thread counts still merge by
        // maximum either way.
        self.estimate_batch_impl(prepared, thetas, par.max(self.par))
    }

    /// One batched kernel run for the whole batch of full curves: every
    /// decoder column comes out of `infer_dist_batch` anyway, so each row's
    /// curve is just its f64 prefix sums — bit-identical to per-query
    /// `curve` calls.
    fn curve_batch(&self, prepared: &[&PreparedQuery]) -> Vec<CardinalityCurve> {
        self.curve_batch_impl(prepared, self.par)
    }

    fn curve_batch_par(
        &self,
        prepared: &[&PreparedQuery],
        par: Parallelism,
    ) -> Vec<CardinalityCurve> {
        // Caller first — see `estimate_batch_par`.
        self.curve_batch_impl(prepared, par.max(self.par))
    }

    fn name(&self) -> String {
        if self.accelerated {
            "CardNet-A".into()
        } else {
            "CardNet".into()
        }
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }

    fn is_monotonic(&self) -> bool {
        // Deterministic inference + non-negative decoders + monotone h_thr:
        // Lemmas 1 and 2. The −incremental ablation predicts cumulative
        // values directly and forfeits the guarantee.
        self.model.config.incremental
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ApiCounters;
    use crate::model::{CardNetConfig, EncoderKind};
    use crate::train::{train_cardnet, TrainerOptions};
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_data::Workload;
    use cardest_fx::build_extractor;
    use proptest::prelude::*;

    fn trained(accelerated: bool) -> (CardNetEstimator, cardest_data::Dataset) {
        let ds = hm_imagenet(SynthConfig::new(250, 77));
        let fx = build_extractor(&ds, 20, 1);
        let wl = Workload::sample_from(&ds, 0.4, 10, 2);
        let split = wl.split(3);
        let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
        cfg.phi_hidden = vec![32, 24];
        cfg.z_dim = 16;
        cfg.vae_hidden = vec![32];
        cfg.vae_latent = 8;
        if accelerated {
            cfg.encoder = EncoderKind::Accelerated;
        }
        let mut opts = TrainerOptions::quick();
        opts.epochs = 10;
        opts.vae_epochs = 3;
        let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
        (CardNetEstimator::from_trainer(fx, trainer), ds)
    }

    #[test]
    fn estimator_reports_identity() {
        let (est, _) = trained(false);
        assert_eq!(est.name(), "CardNet");
        assert!(est.is_monotonic());
        assert!(est.size_bytes() > 0);
        let (est_a, _) = trained(true);
        assert_eq!(est_a.name(), "CardNet-A");
    }

    #[test]
    fn estimates_are_deterministic() {
        let (est, ds) = trained(false);
        let q = &ds.records[0];
        assert_eq!(est.estimate(q, 10.0), est.estimate(q, 10.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn estimates_are_monotone_in_theta(qi in 0usize..250) {
            let (est, ds) = trained(true);
            let q = &ds.records[qi % ds.len()];
            let mut prev = 0.0;
            for step in 0..=20 {
                let theta = ds.theta_max * f64::from(step) / 20.0;
                let c = est.estimate(q, theta);
                prop_assert!(c >= prev - 1e-9, "θ={theta}: {c} < {prev}");
                prev = c;
            }
        }
    }

    #[test]
    fn per_distance_sums_to_estimate() {
        let (est, ds) = trained(false);
        let q = &ds.records[5];
        let per = est.estimate_per_distance(q, 12.0);
        let total: f64 = per.iter().map(|&v| f64::from(v)).sum();
        assert!((total - est.estimate(q, 12.0)).abs() < 1e-4);
    }

    #[test]
    fn curve_matches_scalar_estimates_bitwise() {
        for accelerated in [false, true] {
            let (est, ds) = trained(accelerated);
            let q = &ds.records[3];
            let prepared = est.prepare(q);
            for step in 0..=10 {
                let theta = ds.theta_max * f64::from(step) / 10.0;
                let curve = est.curve(&prepared, theta);
                assert_eq!(curve.len(), est.threshold_step(theta) + 1);
                assert!(curve.is_non_decreasing(), "curve dipped: {curve:?}");
                let scalar = est.estimate(q, theta);
                assert_eq!(
                    curve.last().to_bits(),
                    scalar.to_bits(),
                    "accel={accelerated} θ={theta}: {} vs {scalar}",
                    curve.last()
                );
                assert_eq!(
                    est.estimate_prepared(&prepared, theta).to_bits(),
                    scalar.to_bits()
                );
            }
        }
    }

    #[test]
    fn prepared_sweep_runs_the_encoder_once() {
        let (est, ds) = trained(false);
        let q = &ds.records[9];
        let before = ApiCounters::snapshot();
        let prepared = est.prepare(q);
        let after_prepare = ApiCounters::snapshot().delta_since(&before);
        assert_eq!(after_prepare.extractions, 1);
        assert_eq!(after_prepare.encoder_passes, 0, "prepare is lazy");
        for step in 0..=20 {
            let theta = ds.theta_max * f64::from(step) / 20.0;
            // The sweep exists for its counter side effects; the curves are
            // deliberately dropped.
            let _ = est.curve(&prepared, theta);
        }
        let delta = ApiCounters::snapshot().delta_since(&before);
        assert_eq!(delta.extractions, 1, "one extraction for the whole sweep");
        assert_eq!(delta.encoder_passes, 1, "one encoder pass for the sweep");
    }

    #[test]
    fn estimate_batch_is_bit_identical_to_scalar_path() {
        for accelerated in [false, true] {
            let (est, ds) = trained(accelerated);
            let queries: Vec<_> = (0..12).map(|i| ds.records[i * 7].clone()).collect();
            let thetas: Vec<f64> = (0..12)
                .map(|i| ds.theta_max * f64::from(i) / 11.0)
                .collect();
            let prepared: Vec<PreparedQuery> = queries.iter().map(|q| est.prepare(q)).collect();
            let refs: Vec<&PreparedQuery> = prepared.iter().collect();
            let batch = est.estimate_batch(&refs, &thetas);
            assert_eq!(batch.len(), queries.len());
            for ((q, &theta), got) in queries.iter().zip(&thetas).zip(&batch) {
                let want = est.estimate(q, theta);
                assert_eq!(got.value.to_bits(), want.to_bits(), "θ={theta}");
                assert!(got.is_pinned());
                assert_eq!(got.source.as_deref(), Some(est.name().as_str()));
            }
        }
    }

    #[test]
    fn curve_batch_matches_per_query_curves_bitwise() {
        for accelerated in [false, true] {
            let (est, ds) = trained(accelerated);
            let queries: Vec<_> = (0..8).map(|i| ds.records[i * 11].clone()).collect();
            let prepared: Vec<PreparedQuery> = queries.iter().map(|q| est.prepare(q)).collect();
            let refs: Vec<&PreparedQuery> = prepared.iter().collect();
            let curves = est.curve_batch(&refs);
            assert_eq!(curves.len(), queries.len());
            for (p, batched) in prepared.iter().zip(&curves) {
                let single = est.curve(p, f64::INFINITY);
                assert_eq!(batched.len(), single.len());
                for (a, b) in batched.values().iter().zip(single.values()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "accel={accelerated}");
                }
            }
        }
    }

    #[test]
    fn threaded_estimator_is_bit_identical_to_serial() {
        // An estimator configured for threaded kernels must serve the exact
        // bits of the serial one: estimate, curve (via the fan-out encoder),
        // and both batch kernels.
        let (mut est, ds) = trained(false);
        let queries: Vec<_> = (0..10).map(|i| ds.records[i * 9].clone()).collect();
        let thetas: Vec<f64> = (0..10).map(|i| ds.theta_max * f64::from(i) / 9.0).collect();
        let prepared: Vec<PreparedQuery> = queries.iter().map(|q| est.prepare(q)).collect();
        let refs: Vec<&PreparedQuery> = prepared.iter().collect();
        let serial_batch = est.estimate_batch(&refs, &thetas);
        let serial_curves = est.curve_batch(&refs);
        let serial_curve = est.curve(&est.prepare(&queries[0]), ds.theta_max);

        est.set_parallelism(Parallelism::exact_threads(3));
        assert_eq!(est.parallelism(), Parallelism::exact_threads(3));
        let batch = est.estimate_batch(&refs, &thetas);
        for (a, b) in serial_batch.iter().zip(&batch) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        let curves = est.curve_batch(&refs);
        for (a, b) in serial_curves.iter().zip(&curves) {
            for (x, y) in a.values().iter().zip(b.values()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // A fresh prepared query so the encoder state is recomputed under
        // the threaded fan-out.
        let curve = est.curve(&est.prepare(&queries[0]), ds.theta_max);
        for (x, y) in serial_curve.values().iter().zip(curve.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The trait-level kernel budget is also bit-stable — across worker
        // hints and pinned backends alike.
        let hinted = est.estimate_batch_par(&refs, &thetas, Parallelism::threads(4));
        for (a, b) in serial_batch.iter().zip(&hinted) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        for backend in [
            cardest_nn::KernelBackend::Scalar,
            cardest_nn::KernelBackend::Blocked,
            cardest_nn::KernelBackend::Simd,
        ] {
            let pinned = est.estimate_batch_par(
                &refs,
                &thetas,
                Parallelism::threads(2).with_backend(backend),
            );
            for (a, b) in serial_batch.iter().zip(&pinned) {
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "{}", backend.label());
            }
        }
    }

    #[test]
    fn prepared_queries_are_safe_across_models() {
        // A query prepared (and encoder-cached) under model A must produce
        // model B's own estimates when handed to B: cached state is keyed by
        // instance, never shared.
        let (a, ds) = trained(false);
        let (b, _) = trained(true);
        let q = &ds.records[11];
        let prepared = a.prepare(q);
        let _ = a.curve(&prepared, 10.0); // A claims the state slot
        let from_prepared = b.estimate_prepared(&prepared, 10.0);
        let direct = b.estimate(q, 10.0);
        assert_eq!(from_prepared.to_bits(), direct.to_bits());
    }

    #[test]
    fn estimate_struct_brackets_behave() {
        let e = Estimate::exact(5.0);
        assert!(e.is_pinned());
        assert_eq!(e.width(), 0.0);
        let b = Estimate::from_bracket(4.0, 8.0);
        assert_eq!(b.value, 6.0);
        assert!(!b.is_pinned());
        assert!(b.within_tolerance(0.5));
        assert!(!b.within_tolerance(0.4));
        let pinned = Estimate::from_bracket(3.0, 3.0);
        assert!(pinned.is_pinned());
        assert_eq!(pinned.value, 3.0);
    }

    #[test]
    fn default_trait_methods_serve_scalar_only_estimators() {
        // An estimator implementing only `estimate` (the legacy surface)
        // gets working prepare/curve/estimate_batch for free.
        struct Flat(f64);
        impl CardinalityEstimator for Flat {
            fn estimate(&self, _: &Record, theta: f64) -> f64 {
                self.0 + theta
            }
            fn name(&self) -> String {
                "Flat".into()
            }
            fn size_bytes(&self) -> usize {
                0
            }
        }
        let flat = Flat(2.0);
        let q = Record::Bits(BitVec::zeros(4));
        let prepared = flat.prepare(&q);
        let curve = flat.curve(&prepared, 3.0);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve.last(), 5.0);
        assert_eq!(flat.threshold_step(99.0), 0);
        let batch = flat.estimate_batch(&[&prepared, &prepared], &[1.0, 2.0]);
        assert_eq!(batch[0].value, 3.0);
        assert_eq!(batch[1].value, 4.0);
        assert_eq!(batch[0].source.as_deref(), Some("Flat"));
    }
}
