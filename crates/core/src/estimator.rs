//! The estimator interface shared by CardNet and every baseline, plus the
//! trained-CardNet wrapper.

use crate::model::CardNetModel;
use crate::train::Trainer;
use cardest_data::Record;
use cardest_fx::FeatureExtractor;
use cardest_nn::{Matrix, ParamStore};

/// A cardinality estimator for similarity selection (Problem 1 of the paper):
/// `estimate(x, θ) ≈ |{ y ∈ D : f(x, y) ≤ θ }|`.
pub trait CardinalityEstimator: Send + Sync {
    /// The estimated cardinality (non-negative; not necessarily integral).
    fn estimate(&self, query: &Record, theta: f64) -> f64;

    /// Display name matching the paper's tables (e.g. `CardNet-A`, `DB-US`).
    fn name(&self) -> String;

    /// Serialized parameter footprint in bytes (Table 9's "model size").
    fn size_bytes(&self) -> usize;

    /// Whether the estimator guarantees monotonicity w.r.t. the threshold.
    fn is_monotonic(&self) -> bool {
        false
    }
}

/// A trained CardNet (or CardNet-A): feature extractor + regression model.
pub struct CardNetEstimator {
    fx: Box<dyn FeatureExtractor>,
    model: CardNetModel,
    store: ParamStore,
    accelerated: bool,
}

impl CardNetEstimator {
    /// Wraps the products of [`crate::train::train_cardnet`].
    pub fn from_trainer(fx: Box<dyn FeatureExtractor>, trainer: Trainer) -> Self {
        let accelerated = trainer.model.config.encoder == crate::model::EncoderKind::Accelerated;
        CardNetEstimator {
            fx,
            model: trainer.model,
            store: trainer.store,
            accelerated,
        }
    }

    pub fn model(&self) -> &CardNetModel {
        &self.model
    }

    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    pub fn extractor(&self) -> &dyn FeatureExtractor {
        self.fx.as_ref()
    }

    /// Per-distance estimates `ĉ_0 … ĉ_τ` for a query (diagnostics and the
    /// GPH case study's per-distance costing).
    pub fn estimate_per_distance(&self, query: &Record, theta: f64) -> Vec<f32> {
        let tau = self.fx.map_threshold(theta);
        let x = self.query_matrix(query);
        self.model.infer_dist(&self.store, &x, tau)
    }

    fn query_matrix(&self, query: &Record) -> Matrix {
        let bits = self.fx.extract(query);
        Matrix::from_vec(1, bits.len(), bits.to_f32())
    }
}

/// A borrowed view over a trainer's current model: lets update loops (§8)
/// evaluate mid-stream without consuming the trainer.
pub struct CardNetView<'a> {
    fx: &'a dyn FeatureExtractor,
    trainer: &'a Trainer,
}

impl CardNetEstimator {
    /// Borrows a trainer as an estimator.
    pub fn from_trainer_ref<'a>(
        fx: &'a dyn FeatureExtractor,
        trainer: &'a Trainer,
    ) -> CardNetView<'a> {
        CardNetView { fx, trainer }
    }
}

impl CardinalityEstimator for CardNetView<'_> {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let tau = self.fx.map_threshold(theta);
        let bits = self.fx.extract(query);
        let x = Matrix::from_vec(1, bits.len(), bits.to_f32());
        self.trainer.model.infer_sum(&self.trainer.store, &x, tau)
    }

    fn name(&self) -> String {
        "CardNet(view)".into()
    }

    fn size_bytes(&self) -> usize {
        self.trainer.store.size_bytes()
    }

    fn is_monotonic(&self) -> bool {
        self.trainer.model.config.incremental
    }
}

impl CardinalityEstimator for CardNetEstimator {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let tau = self.fx.map_threshold(theta);
        let x = self.query_matrix(query);
        self.model.infer_sum(&self.store, &x, tau)
    }

    fn name(&self) -> String {
        if self.accelerated {
            "CardNet-A".into()
        } else {
            "CardNet".into()
        }
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }

    fn is_monotonic(&self) -> bool {
        // Deterministic inference + non-negative decoders + monotone h_thr:
        // Lemmas 1 and 2. The −incremental ablation predicts cumulative
        // values directly and forfeits the guarantee.
        self.model.config.incremental
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CardNetConfig, EncoderKind};
    use crate::train::{train_cardnet, TrainerOptions};
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_data::Workload;
    use cardest_fx::build_extractor;
    use proptest::prelude::*;

    fn trained(accelerated: bool) -> (CardNetEstimator, cardest_data::Dataset) {
        let ds = hm_imagenet(SynthConfig::new(250, 77));
        let fx = build_extractor(&ds, 20, 1);
        let wl = Workload::sample_from(&ds, 0.4, 10, 2);
        let split = wl.split(3);
        let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
        cfg.phi_hidden = vec![32, 24];
        cfg.z_dim = 16;
        cfg.vae_hidden = vec![32];
        cfg.vae_latent = 8;
        if accelerated {
            cfg.encoder = EncoderKind::Accelerated;
        }
        let mut opts = TrainerOptions::quick();
        opts.epochs = 10;
        opts.vae_epochs = 3;
        let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
        (CardNetEstimator::from_trainer(fx, trainer), ds)
    }

    #[test]
    fn estimator_reports_identity() {
        let (est, _) = trained(false);
        assert_eq!(est.name(), "CardNet");
        assert!(est.is_monotonic());
        assert!(est.size_bytes() > 0);
        let (est_a, _) = trained(true);
        assert_eq!(est_a.name(), "CardNet-A");
    }

    #[test]
    fn estimates_are_deterministic() {
        let (est, ds) = trained(false);
        let q = &ds.records[0];
        assert_eq!(est.estimate(q, 10.0), est.estimate(q, 10.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn estimates_are_monotone_in_theta(qi in 0usize..250) {
            let (est, ds) = trained(true);
            let q = &ds.records[qi % ds.len()];
            let mut prev = 0.0;
            for step in 0..=20 {
                let theta = ds.theta_max * f64::from(step) / 20.0;
                let c = est.estimate(q, theta);
                prop_assert!(c >= prev - 1e-9, "θ={theta}: {c} < {prev}");
                prev = c;
            }
        }
    }

    #[test]
    fn per_distance_sums_to_estimate() {
        let (est, ds) = trained(false);
        let q = &ds.records[5];
        let per = est.estimate_per_distance(q, 12.0);
        let total: f64 = per.iter().map(|&v| f64::from(v)).sum();
        assert!((total - est.estimate(q, 12.0)).abs() < 1e-4);
    }
}
