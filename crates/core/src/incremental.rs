//! Incremental learning for dataset updates (§8 of the paper).
//!
//! When records are inserted or deleted: first the *validation* labels are
//! refreshed against the updated dataset and the model's validation error is
//! re-measured; only if it degraded are the *training* labels refreshed and
//! training resumed **from the current weights over the entire training set**
//! (full data prevents catastrophic forgetting; the original queries are kept
//! and only their labels change).

use crate::features::prepare_tensors;
use crate::train::{TrainReport, Trainer};
use cardest_data::{Dataset, Workload};
use cardest_fx::FeatureExtractor;

/// Outcome of one update-handling pass.
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// Validation MSLE before any retraining (on refreshed labels).
    pub val_before: f64,
    /// Validation MSLE afterwards (same as before if no retraining ran).
    pub val_after: f64,
    /// Whether incremental training was triggered.
    pub retrained: bool,
    pub report: Option<TrainReport>,
}

/// Manages a trained model's lifecycle under dataset updates.
pub struct IncrementalLearner {
    pub trainer: Trainer,
    pub train_wl: Workload,
    pub valid_wl: Workload,
    /// Validation MSLE observed right after the last (re)training.
    baseline_val: f64,
    /// Relative degradation that triggers retraining (default 5%).
    pub tolerance: f64,
    /// Epoch budget per incremental pass.
    pub max_epochs: usize,
}

impl IncrementalLearner {
    pub fn new(
        trainer: Trainer,
        train_wl: Workload,
        valid_wl: Workload,
        fx: &dyn FeatureExtractor,
    ) -> Self {
        let valid = prepare_tensors(&valid_wl, fx);
        let baseline_val = trainer.validation_msle(&valid);
        IncrementalLearner {
            trainer,
            train_wl,
            valid_wl,
            baseline_val,
            tolerance: 0.05,
            max_epochs: 10,
        }
    }

    /// Handles one batch of updates: `dataset` is the *already updated*
    /// collection. Implements the §8 monitor-then-retrain protocol.
    pub fn on_update(&mut self, dataset: &Dataset, fx: &dyn FeatureExtractor) -> UpdateOutcome {
        // 1. Refresh validation labels and measure the error.
        self.valid_wl.relabel(dataset);
        let valid = prepare_tensors(&self.valid_wl, fx);
        let val_before = self.trainer.validation_msle(&valid);

        // 2. Retrain only if the error increased beyond tolerance.
        if val_before <= self.baseline_val * (1.0 + self.tolerance) {
            return UpdateOutcome {
                val_before,
                val_after: val_before,
                retrained: false,
                report: None,
            };
        }

        // 3. Refresh training labels (same queries, new labels) and resume
        //    from the current parameters over the full training set.
        self.train_wl.relabel(dataset);
        let train = prepare_tensors(&self.train_wl, fx);
        let report = self
            .trainer
            .fit_incremental(&train, &valid, self.max_epochs, 3);
        let val_after = self.trainer.validation_msle(&valid);
        self.baseline_val = val_after;
        UpdateOutcome {
            val_before,
            val_after,
            retrained: true,
            report: Some(report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CardNetConfig;
    use crate::train::{train_cardnet, TrainerOptions};
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_data::{BitVec, Record};
    use cardest_fx::build_extractor;
    use rand::{Rng, SeedableRng};

    #[test]
    fn small_updates_do_not_trigger_retraining() {
        let mut ds = hm_imagenet(SynthConfig::new(300, 55));
        let fx = build_extractor(&ds, 20, 1);
        let wl = Workload::sample_from(&ds, 0.3, 8, 2);
        let split = wl.split(3);
        let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
        cfg.phi_hidden = vec![32, 24];
        cfg.z_dim = 16;
        cfg.vae_hidden = vec![32];
        cfg.vae_latent = 8;
        let mut opts = TrainerOptions::quick();
        opts.epochs = 8;
        opts.vae_epochs = 3;
        let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
        let mut learner = IncrementalLearner::new(
            trainer,
            split.train.clone(),
            split.valid.clone(),
            fx.as_ref(),
        );

        // Insert two near-duplicates of existing records: a negligible shift.
        let a = ds.records[0].clone();
        ds.records.push(a.clone());
        ds.records.push(a);
        let outcome = learner.on_update(&ds, fx.as_ref());
        assert!(!outcome.retrained, "tiny update should not retrain");
        assert_eq!(outcome.val_before, outcome.val_after);
    }

    #[test]
    fn large_updates_trigger_retraining_and_recover() {
        let mut ds = hm_imagenet(SynthConfig::new(250, 66));
        let fx = build_extractor(&ds, 20, 1);
        let wl = Workload::sample_from(&ds, 0.4, 8, 2);
        let split = wl.split(3);
        let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
        cfg.phi_hidden = vec![32, 24];
        cfg.z_dim = 16;
        cfg.vae_hidden = vec![32];
        cfg.vae_latent = 8;
        let mut opts = TrainerOptions::quick();
        opts.epochs = 8;
        opts.vae_epochs = 3;
        let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
        let mut learner = IncrementalLearner::new(
            trainer,
            split.train.clone(),
            split.valid.clone(),
            fx.as_ref(),
        );
        learner.tolerance = 0.01;
        learner.max_epochs = 5;

        // Double the dataset with near-copies of existing records (≤ 3 bits
        // flipped): every query ball roughly doubles its cardinality.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for i in 0..250 {
            let mut bits: BitVec = ds.records[i].as_bits().clone();
            for _ in 0..3 {
                bits.flip(rng.gen_range(0..bits.len()));
            }
            ds.records.push(Record::Bits(bits));
        }
        let outcome = learner.on_update(&ds, fx.as_ref());
        assert!(outcome.retrained, "drastic update must retrain");
        let report = outcome.report.expect("report present when retrained");
        assert!(report.epochs_run >= 1);
        assert!(
            outcome.val_after <= outcome.val_before,
            "incremental learning failed to help: {} -> {}",
            outcome.val_before,
            outcome.val_after
        );
    }
}
