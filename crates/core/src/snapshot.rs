//! Model persistence: serialize a trained CardNet (architecture + weights +
//! the extractor's configuration hash) to JSON and load it back.
//!
//! JSON keeps snapshots human-inspectable and diff-able; the weight payload
//! dominates either way and `bytes`-backed compaction is a one-liner on top
//! (`Snapshot::to_bytes`).

use crate::model::CardNetModel;
use crate::train::Trainer;
use cardest_nn::ParamStore;
use serde::{Deserialize, Serialize};

/// Compaction seam: the one place that turns a JSON payload into transport
/// bytes. Imported via `self::` so the path can't be mistaken for an
/// external crate; a later PR can swap the body for real compression
/// without touching `Snapshot`.
mod bytes_shim {
    pub fn to_compact(json: String) -> bytes::Bytes {
        bytes::Bytes::from(json.into_bytes())
    }
}

use self::bytes_shim::to_compact;

/// A self-contained trained-model snapshot.
#[derive(Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    pub model: CardNetModel,
    pub params: ParamStore,
    /// Name of the feature extractor this model was trained behind.
    pub extractor: String,
}

impl Snapshot {
    pub const VERSION: u32 = 1;

    pub fn from_trainer(trainer: &Trainer, extractor: &str) -> Snapshot {
        Snapshot {
            version: Self::VERSION,
            model: trainer.model.clone(),
            params: trainer.store.clone(),
            extractor: extractor.to_string(),
        }
    }

    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    pub fn from_json(json: &str) -> serde_json::Result<Snapshot> {
        let snap: Snapshot = serde_json::from_str(json)?;
        Ok(snap)
    }

    /// Compact binary form (JSON bytes in a `bytes::Bytes`, ready for
    /// transport or mmap-style sharing).
    pub fn to_bytes(&self) -> serde_json::Result<bytes::Bytes> {
        Ok(to_compact(self.to_json()?))
    }

    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    pub fn load(path: &std::path::Path) -> std::io::Result<Snapshot> {
        let json = std::fs::read_to_string(path)?;
        Snapshot::from_json(&json).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CardNetConfig;
    use crate::train::{train_cardnet, TrainerOptions};
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_data::Workload;
    use cardest_fx::build_extractor;
    use cardest_nn::Matrix;

    #[test]
    fn snapshot_roundtrip_preserves_predictions() {
        let ds = hm_imagenet(SynthConfig::new(200, 61));
        let fx = build_extractor(&ds, 12, 1);
        let split = Workload::sample_from(&ds, 0.3, 8, 2).split(3);
        let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
        cfg.phi_hidden = vec![24, 16];
        cfg.z_dim = 12;
        cfg.vae_hidden = vec![24];
        cfg.vae_latent = 6;
        let opts = TrainerOptions {
            epochs: 4,
            vae_epochs: 2,
            ..TrainerOptions::quick()
        };
        let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);

        let snap = Snapshot::from_trainer(&trainer, fx.name());
        let json = snap.to_json().expect("serialize");
        let back = Snapshot::from_json(&json).expect("deserialize");
        assert_eq!(back.version, Snapshot::VERSION);
        assert_eq!(back.extractor, fx.name());

        // Predictions through the restored weights must match exactly.
        let bits = fx.extract(&ds.records[0]);
        let x = Matrix::from_vec(1, bits.len(), bits.to_f32());
        for tau in [0usize, 4, 8] {
            let a = trainer.model.infer_sum(&trainer.store, &x, tau);
            let b = back.model.infer_sum(&back.params, &x, tau);
            assert!((a - b).abs() < 1e-9, "τ={tau}: {a} vs {b}");
        }
        // The compact byte form carries the same JSON payload: a snapshot
        // restored from it matches the direct round trip.
        let bytes = snap.to_bytes().expect("bytes");
        assert!(bytes.len() > 100);
        let from_bytes =
            Snapshot::from_json(std::str::from_utf8(&bytes).expect("utf-8")).expect("from bytes");
        assert_eq!(from_bytes.params.num_scalars(), back.params.num_scalars());
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let ds = hm_imagenet(SynthConfig::new(100, 62));
        let fx = build_extractor(&ds, 8, 1);
        let split = Workload::sample_from(&ds, 0.3, 6, 2).split(3);
        let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
        cfg.phi_hidden = vec![16];
        cfg.z_dim = 8;
        cfg = cfg.without_vae();
        let opts = TrainerOptions {
            epochs: 2,
            vae_epochs: 0,
            ..TrainerOptions::quick()
        };
        let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
        let snap = Snapshot::from_trainer(&trainer, fx.name());

        let dir = std::env::temp_dir().join("cardest_snapshot_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("model.json");
        snap.save(&path).expect("save");
        let loaded = Snapshot::load(&path).expect("load");
        assert_eq!(loaded.params.num_scalars(), trainer.store.num_scalars());
        std::fs::remove_file(&path).ok();
    }
}
