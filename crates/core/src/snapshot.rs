//! Model persistence: serialize a trained CardNet (architecture + weights +
//! the extractor's configuration hash) to JSON and load it back.
//!
//! JSON keeps snapshots human-inspectable and diff-able; the weight payload
//! dominates either way and `bytes`-backed compaction is a one-liner on top
//! (`Snapshot::to_bytes`).
//!
//! Loading is *validated*: a snapshot records the `τ_max` of the extractor it
//! was trained behind, and [`Snapshot::validate`] rejects any payload whose
//! decoder count disagrees with it. A model that silently mis-decodes (e.g.
//! a truncated weight file, or a snapshot paired with the wrong extractor
//! configuration) would be poison for a hot-swapping service — the serving
//! layer only ever publishes snapshots that pass this check.

use crate::estimator::CardNetEstimator;
use crate::model::CardNetModel;
use crate::train::Trainer;
use cardest_fx::FeatureExtractor;
use cardest_nn::ParamStore;
use serde::{Deserialize, Serialize};

/// Compaction seam: the one place that turns a JSON payload into transport
/// bytes. Imported via `self::` so the path can't be mistaken for an
/// external crate; a later PR can swap the body for real compression
/// without touching `Snapshot`.
mod bytes_shim {
    pub fn to_compact(json: String) -> bytes::Bytes {
        bytes::Bytes::from(json.into_bytes())
    }
}

use self::bytes_shim::to_compact;

/// Why a snapshot failed to parse or validate.
#[derive(Debug)]
pub enum SnapshotError {
    /// The JSON payload did not parse into the snapshot schema.
    Serde(serde_json::Error),
    /// The payload parsed but is internally inconsistent or does not match
    /// the requesting configuration.
    Invalid(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Serde(e) => write!(f, "snapshot parse error: {e}"),
            SnapshotError::Invalid(msg) => write!(f, "invalid snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Serde(e)
    }
}

/// A self-contained trained-model snapshot.
#[derive(Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    pub model: CardNetModel,
    pub params: ParamStore,
    /// Name of the feature extractor this model was trained behind.
    pub extractor: String,
    /// `τ_max` of that extractor; the model must carry `tau_max + 1`
    /// decoders. Recorded independently of `model.config` so corruption or
    /// a mismatched pairing is caught at load time instead of mis-decoding.
    pub tau_max: usize,
}

impl Snapshot {
    pub const VERSION: u32 = 2;

    pub fn from_trainer(trainer: &Trainer, extractor: &str, tau_max: usize) -> Snapshot {
        Snapshot {
            version: Self::VERSION,
            model: trainer.model.clone(),
            params: trainer.store.clone(),
            extractor: extractor.to_string(),
            tau_max,
        }
    }

    /// Internal-consistency check, run automatically by [`Snapshot::from_json`]
    /// and [`Snapshot::load`].
    pub fn validate(&self) -> Result<(), SnapshotError> {
        if self.version > Self::VERSION {
            return Err(SnapshotError::Invalid(format!(
                "snapshot version {} is newer than supported version {}",
                self.version,
                Self::VERSION
            )));
        }
        let n_out = self.model.config.n_out;
        if n_out == 0 {
            return Err(SnapshotError::Invalid(
                "model has zero decoders (n_out = 0)".to_string(),
            ));
        }
        if n_out != self.tau_max + 1 {
            return Err(SnapshotError::Invalid(format!(
                "decoder count {} disagrees with recorded tau_max {} \
                 (expected {} decoders); refusing to mis-decode",
                n_out,
                self.tau_max,
                self.tau_max + 1
            )));
        }
        Ok(())
    }

    /// Checks this snapshot against the *requesting* configuration — the
    /// extractor a caller intends to pair it with. Used by the CLI and by
    /// the serving layer before a hot-swap publish.
    pub fn validate_for(&self, fx: &dyn FeatureExtractor) -> Result<(), SnapshotError> {
        self.validate()?;
        if fx.name() != self.extractor {
            return Err(SnapshotError::Invalid(format!(
                "snapshot was trained behind extractor `{}`, caller supplies `{}`",
                self.extractor,
                fx.name()
            )));
        }
        if fx.tau_max() != self.tau_max {
            return Err(SnapshotError::Invalid(format!(
                "snapshot records tau_max {} but the supplied extractor has tau_max {}",
                self.tau_max,
                fx.tau_max()
            )));
        }
        if fx.dim() != self.model.config.input_dim {
            return Err(SnapshotError::Invalid(format!(
                "model expects {}-dimensional inputs, extractor produces {}",
                self.model.config.input_dim,
                fx.dim()
            )));
        }
        Ok(())
    }

    /// Consumes the snapshot into a ready-to-serve estimator, validating it
    /// against the supplied extractor first.
    pub fn into_estimator(
        self,
        fx: Box<dyn FeatureExtractor>,
    ) -> Result<CardNetEstimator, SnapshotError> {
        self.validate_for(fx.as_ref())?;
        let trainer = Trainer::from_parts(self.model, self.params);
        Ok(CardNetEstimator::from_trainer(fx, trainer))
    }

    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    pub fn from_json(json: &str) -> Result<Snapshot, SnapshotError> {
        let snap: Snapshot = serde_json::from_str(json)?;
        snap.validate()?;
        Ok(snap)
    }

    /// Compact binary form (JSON bytes in a `bytes::Bytes`, ready for
    /// transport or mmap-style sharing).
    pub fn to_bytes(&self) -> serde_json::Result<bytes::Bytes> {
        Ok(to_compact(self.to_json()?))
    }

    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    pub fn load(path: &std::path::Path) -> std::io::Result<Snapshot> {
        let json = std::fs::read_to_string(path)?;
        Snapshot::from_json(&json).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CardNetConfig;
    use crate::train::{train_cardnet, TrainerOptions};
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_data::Workload;
    use cardest_fx::build_extractor;
    use cardest_nn::Matrix;

    fn tiny_snapshot(seed: u64) -> (Snapshot, Trainer, Box<dyn cardest_fx::FeatureExtractor>) {
        let ds = hm_imagenet(SynthConfig::new(120, seed));
        let fx = build_extractor(&ds, 8, 1);
        let split = Workload::sample_from(&ds, 0.3, 6, 2).split(3);
        let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
        cfg.phi_hidden = vec![16];
        cfg.z_dim = 8;
        cfg = cfg.without_vae();
        let opts = TrainerOptions {
            epochs: 2,
            vae_epochs: 0,
            ..TrainerOptions::quick()
        };
        let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
        let snap = Snapshot::from_trainer(&trainer, fx.name(), fx.tau_max());
        (snap, trainer, fx)
    }

    #[test]
    fn snapshot_roundtrip_preserves_predictions() {
        let ds = hm_imagenet(SynthConfig::new(200, 61));
        let fx = build_extractor(&ds, 12, 1);
        let split = Workload::sample_from(&ds, 0.3, 8, 2).split(3);
        let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
        cfg.phi_hidden = vec![24, 16];
        cfg.z_dim = 12;
        cfg.vae_hidden = vec![24];
        cfg.vae_latent = 6;
        let opts = TrainerOptions {
            epochs: 4,
            vae_epochs: 2,
            ..TrainerOptions::quick()
        };
        let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);

        let snap = Snapshot::from_trainer(&trainer, fx.name(), fx.tau_max());
        let json = snap.to_json().expect("serialize");
        let back = Snapshot::from_json(&json).expect("deserialize");
        assert_eq!(back.version, Snapshot::VERSION);
        assert_eq!(back.extractor, fx.name());
        assert_eq!(back.tau_max, fx.tau_max());

        // Predictions through the restored weights must match exactly.
        let bits = fx.extract(&ds.records[0]);
        let x = Matrix::from_vec(1, bits.len(), bits.to_f32());
        for tau in [0usize, 4, 8] {
            let a = trainer.model.infer_sum(&trainer.store, &x, tau);
            let b = back.model.infer_sum(&back.params, &x, tau);
            assert!((a - b).abs() < 1e-9, "τ={tau}: {a} vs {b}");
        }
        // The compact byte form carries the same JSON payload: a snapshot
        // restored from it matches the direct round trip.
        let bytes = snap.to_bytes().expect("bytes");
        assert!(bytes.len() > 100);
        let from_bytes =
            Snapshot::from_json(std::str::from_utf8(&bytes).expect("utf-8")).expect("from bytes");
        assert_eq!(from_bytes.params.num_scalars(), back.params.num_scalars());
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let (snap, trainer, _fx) = tiny_snapshot(62);
        let dir = std::env::temp_dir().join("cardest_snapshot_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("model.json");
        snap.save(&path).expect("save");
        let loaded = Snapshot::load(&path).expect("load");
        assert_eq!(loaded.params.num_scalars(), trainer.store.num_scalars());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_tau_max_is_rejected_with_descriptive_error() {
        let (snap, _, _) = tiny_snapshot(63);
        let json = snap.to_json().expect("serialize");
        // Corrupt the recorded tau_max so it disagrees with the decoder
        // count (8 + 1 = 9 decoders recorded, tau_max rewritten to 5).
        let tampered = json.replace("\"tau_max\":8", "\"tau_max\":5");
        assert_ne!(json, tampered, "tamper target not found");
        let err = Snapshot::from_json(&tampered).err().expect("must reject");
        let msg = err.to_string();
        assert!(
            msg.contains("decoder count") && msg.contains("tau_max 5"),
            "error not descriptive: {msg}"
        );
    }

    #[test]
    fn mismatched_requesting_extractor_is_rejected() {
        let (snap, _, _) = tiny_snapshot(64);
        // An extractor with a different tau_max (and hence decoder count)
        // must be refused even though the snapshot itself is consistent.
        let ds = hm_imagenet(SynthConfig::new(120, 64));
        let wrong_fx = build_extractor(&ds, 12, 1);
        let err = snap
            .validate_for(wrong_fx.as_ref())
            .expect_err("must reject");
        assert!(
            err.to_string().contains("tau_max"),
            "error not descriptive: {err}"
        );
    }

    #[test]
    fn into_estimator_validates_then_serves() {
        let (snap, trainer, fx) = tiny_snapshot(65);
        let ds = hm_imagenet(SynthConfig::new(120, 65));
        let bits = fx.extract(&ds.records[0]);
        let x = Matrix::from_vec(1, bits.len(), bits.to_f32());
        let expect = trainer.model.infer_sum(&trainer.store, &x, 4);
        let est = snap.into_estimator(fx).expect("valid snapshot");
        use crate::estimator::CardinalityEstimator;
        let got = est.estimate(&ds.records[0], ds.theta_max * 0.5);
        assert!(got.is_finite());
        // Same model, same weights: a τ=4 probe through the raw model path
        // must agree with itself after the round trip.
        let got_raw = est.model().infer_sum(est.store(), &x, 4);
        assert_eq!(expect, got_raw);
    }
}
