//! Training (§6): data preparation is in [`crate::features`]; this module
//! implements the loss of Eq. 2–3 and the dynamic training strategy.
//!
//! Total loss per batch:
//! `Σ_τ P(τ)·MSLE(ĉ_cum(τ), c_cum(τ)) + λ_Δ·Σ_i ω_i·MSLE(ĉ_i, c_i) + λ·L_vae`
//!
//! where `P(τ)` is the empirical threshold distribution after feature
//! extraction and the `ω_i` are re-derived after every validation pass from
//! the per-distance loss *trends*: distances whose validation loss grew get
//! weight proportional to the growth, the rest get zero (§6.2).

use crate::features::{prepare_tensors, tau_distribution, TrainTensors};
use crate::model::{CardNetConfig, CardNetModel};
use cardest_data::Workload;
use cardest_fx::FeatureExtractor;
use cardest_nn::loss;
use cardest_nn::{Adam, Matrix, Optimizer, Parallelism, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Trainer knobs. Defaults are the CPU-scaled counterparts of §9.1.3
/// (λ = λ_Δ = 0.1; paper trains the VAE 100 epochs and the model 800).
#[derive(Clone, Debug)]
pub struct TrainerOptions {
    pub epochs: usize,
    pub vae_epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    /// λ — weight of the VAE loss inside the main objective (Eq. 2).
    pub lambda_vae: f32,
    /// λ_Δ — weight of the dynamic per-distance term (Eq. 3).
    pub lambda_delta: f32,
    /// Validate (and refresh ω) every this many epochs.
    pub validate_every: usize,
    /// Stop after this many validations without improvement (0 = never).
    pub patience: usize,
    pub seed: u64,
    /// Disables the dynamic ω updates (ablation −dynamic: pure MSLE).
    pub dynamic: bool,
    /// Worker threads for the minibatch forward/backward kernels (1 =
    /// serial). Threaded kernels are bit-identical to the scalar path, so
    /// this changes training wall clock, never the trained parameters.
    pub threads: usize,
    /// Pinned compute-kernel backend for the forward/backward products;
    /// `None` resolves [`cardest_nn::KernelBackend::default_backend`]
    /// (env override, else best the CPU supports). Every backend is
    /// bit-identical, so this too can never change the trained parameters.
    pub kernel_backend: Option<cardest_nn::KernelBackend>,
}

impl Default for TrainerOptions {
    fn default() -> Self {
        TrainerOptions {
            epochs: 60,
            vae_epochs: 25,
            batch_size: 64,
            learning_rate: 2e-3,
            lambda_vae: 0.1,
            lambda_delta: 0.1,
            validate_every: 5,
            patience: 6,
            seed: 0xC0DE,
            dynamic: true,
            threads: 1,
            kernel_backend: None,
        }
    }
}

impl TrainerOptions {
    /// Short schedule for tests and `quick` experiment runs.
    pub fn quick() -> Self {
        TrainerOptions {
            epochs: 30,
            vae_epochs: 10,
            patience: 4,
            ..Default::default()
        }
    }
}

/// What training produced, for Table 10 / Figure 8 bookkeeping.
#[derive(Clone, Debug)]
pub struct TrainReport {
    pub epochs_run: usize,
    pub best_val_msle: f64,
    pub train_seconds: f64,
}

/// Trains a CardNet model on prepared tensors; owns model + parameters.
pub struct Trainer {
    pub model: CardNetModel,
    pub store: ParamStore,
    pub options: TrainerOptions,
    /// `P(τ)` row weights for the cumulative loss.
    p_tau: Matrix,
    /// Dynamic per-distance weights ω (row vector).
    omega: Matrix,
    rng: StdRng,
}

impl Trainer {
    pub fn new(config: CardNetConfig, options: TrainerOptions, p_tau: Vec<f32>) -> Self {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut store = ParamStore::new();
        let model = CardNetModel::new(&mut store, &mut rng, config);
        let n_out = model.config.n_out;
        assert_eq!(p_tau.len(), n_out, "P(τ) arity mismatch");
        let omega = Matrix::full(1, n_out, 1.0 / n_out as f32);
        Trainer {
            model,
            store,
            options,
            p_tau: Matrix::row_vector(p_tau),
            omega,
            rng,
        }
    }

    /// Rebuilds a trainer around a restored model and parameter store (the
    /// snapshot-loading path). Training state (ω, `P(τ)`, RNG) resets to
    /// defaults; inference behaves identically to the saved model.
    pub fn from_parts(model: CardNetModel, store: ParamStore) -> Trainer {
        let options = TrainerOptions::default();
        let n_out = model.config.n_out;
        let rng = StdRng::seed_from_u64(options.seed);
        Trainer {
            model,
            store,
            options,
            p_tau: Matrix::full(1, n_out, 1.0 / n_out as f32),
            omega: Matrix::full(1, n_out, 1.0 / n_out as f32),
            rng,
        }
    }

    /// The kernel budget derived from [`TrainerOptions::threads`] and
    /// [`TrainerOptions::kernel_backend`].
    pub fn kernel_parallelism(&self) -> Parallelism {
        Parallelism::threads(self.options.threads).with_backend_opt(self.options.kernel_backend)
    }

    /// Pre-trains the VAE unsupervised on the binary representations
    /// (§9.1.3 trains it before the estimator).
    pub fn pretrain_vae(&mut self, x: &Matrix) {
        let Some(_) = self.model.vae() else { return };
        let par = self.kernel_parallelism();
        let mut opt = Adam::new(self.options.learning_rate);
        let n = x.rows();
        let bs = self.options.batch_size.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.options.vae_epochs {
            order.shuffle(&mut self.rng);
            for chunk in order.chunks(bs) {
                let xb = x.gather_rows(chunk);
                let mut tape = Tape::with_parallelism(par);
                let xv = tape.input(xb);
                let vae = self.model.vae().expect("vae enabled");
                let fwd = vae.forward_train(&mut tape, &self.store, xv, &mut self.rng, 0.1);
                tape.backward(fwd.loss, &mut self.store);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
        }
    }

    /// One optimization step over a batch; returns the scalar loss.
    fn step(&mut self, batch: &TrainTensors, opt: &mut Adam) -> f32 {
        let mut tape = Tape::with_parallelism(self.kernel_parallelism());
        let fwd =
            self.model
                .forward_train(&mut tape, &self.store, batch.x.clone(), &mut self.rng, 0.1);
        let cum_t = tape.input(batch.cum.clone());
        // The −incremental ablation's decoders predict cumulative values
        // directly, so its per-distance term also targets the cumulative.
        let dist_targets = if self.model.config.incremental {
            batch.dist.clone()
        } else {
            batch.cum.clone()
        };
        let dist_t = tape.input(dist_targets);
        let p = tape.input(self.p_tau.clone());
        let main = loss::weighted_msle(&mut tape, fwd.cum, cum_t, p);

        let mut total = main;
        if self.options.dynamic && self.options.lambda_delta > 0.0 {
            let w = tape.input(self.omega.clone());
            let per_dist = loss::weighted_msle(&mut tape, fwd.dist, dist_t, w);
            let scaled = tape.scale(per_dist, self.options.lambda_delta);
            total = tape.add(total, scaled);
        }
        if let Some(vl) = fwd.vae_loss {
            let scaled = tape.scale(vl, self.options.lambda_vae);
            total = tape.add(total, scaled);
        }
        let value = tape.value(total).get(0, 0);
        // The kernels now propagate non-finite values instead of masking
        // them behind the sparse zero-skip; catch a diverging loss at the
        // step that produced it rather than epochs later.
        debug_assert!(
            value.is_finite(),
            "non-finite training loss {value}: diverged batch (lr too high or bad targets)"
        );
        tape.backward(total, &mut self.store);
        self.store.clip_grad_norm(5.0);
        opt.step(&mut self.store);
        value
    }

    /// Validation MSLE of the cumulative predictions, weighted by `P(τ)`,
    /// plus the per-distance losses `ℓ_i` used by the ω update.
    fn validate(&self, valid: &TrainTensors) -> (f64, Vec<f32>) {
        let pred =
            self.model
                .infer_dist_batch_with(&self.store, &valid.x, self.kernel_parallelism());
        // Incremental models accumulate per-distance outputs into cumulative
        // predictions; the −incremental ablation already predicts cumulative.
        let mut cum = pred.clone();
        if self.model.config.incremental {
            for r in 0..cum.rows() {
                let row = cum.row_mut(r);
                for j in 1..row.len() {
                    row[j] += row[j - 1];
                }
            }
        }
        let per_col_cum = loss::msle_per_column(&cum, &valid.cum);
        let weighted: f64 = per_col_cum
            .iter()
            .zip(self.p_tau.row(0))
            .map(|(&l, &p)| f64::from(l) * f64::from(p))
            .sum();
        let dist_targets = if self.model.config.incremental {
            &valid.dist
        } else {
            &valid.cum
        };
        let per_dist = loss::msle_per_column(&pred, dist_targets);
        (weighted, per_dist)
    }

    /// The §6.2 ω update from validation loss trends.
    fn update_omega(&mut self, prev: &[f32], cur: &[f32]) {
        let deltas: Vec<f32> = cur.iter().zip(prev).map(|(&c, &p)| c - p).collect();
        let pos_sum: f32 = deltas.iter().filter(|&&d| d > 0.0).sum();
        let n_out = self.model.config.n_out;
        if pos_sum > 0.0 {
            for (i, &d) in deltas.iter().enumerate().take(n_out) {
                let w = if d > 0.0 { d / pos_sum } else { 0.0 };
                self.omega.set(0, i, w);
            }
        } else {
            // Everything improved: fall back to uniform focus.
            let u = 1.0 / n_out as f32;
            for i in 0..n_out {
                self.omega.set(0, i, u);
            }
        }
    }

    /// Full training loop with best-snapshot selection and early stopping.
    /// Returns the report; `self.store` holds the best parameters.
    pub fn fit(&mut self, train: &TrainTensors, valid: &TrainTensors) -> TrainReport {
        let started = std::time::Instant::now();
        self.pretrain_vae(&train.x);
        let mut opt = Adam::new(self.options.learning_rate);
        let n = train.n_examples();
        let bs = self.options.batch_size.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();

        let mut best = f64::INFINITY;
        let mut best_params: Option<ParamStore> = None;
        let mut prev_per_dist: Option<Vec<f32>> = None;
        let mut bad_validations = 0usize;
        let mut epochs_run = 0usize;

        for epoch in 0..self.options.epochs {
            epochs_run = epoch + 1;
            // Step-decay schedule: halve the rate at 50% and 75% of the run.
            let lr = self.options.learning_rate
                * if epoch * 4 >= self.options.epochs * 3 {
                    0.25
                } else if epoch * 2 >= self.options.epochs {
                    0.5
                } else {
                    1.0
                };
            opt.set_learning_rate(lr);
            order.shuffle(&mut self.rng);
            for chunk in order.chunks(bs) {
                let batch = train.batch(chunk);
                self.step(&batch, &mut opt);
            }
            if (epoch + 1) % self.options.validate_every == 0 || epoch + 1 == self.options.epochs {
                let (val, per_dist) = self.validate(valid);
                if let Some(prev) = &prev_per_dist {
                    if self.options.dynamic {
                        self.update_omega(prev, &per_dist);
                    }
                }
                prev_per_dist = Some(per_dist);
                if val < best {
                    best = val;
                    best_params = Some(self.store.clone());
                    bad_validations = 0;
                } else {
                    bad_validations += 1;
                    if self.options.patience > 0 && bad_validations >= self.options.patience {
                        break;
                    }
                }
            }
        }
        if let Some(p) = best_params {
            self.store = p;
        }
        TrainReport {
            epochs_run,
            best_val_msle: best,
            train_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Continues training from the current parameters (incremental learning,
    /// §8): stops once validation MSLE is flat for `flat_epochs` consecutive
    /// validations.
    pub fn fit_incremental(
        &mut self,
        train: &TrainTensors,
        valid: &TrainTensors,
        max_epochs: usize,
        flat_epochs: usize,
    ) -> TrainReport {
        let started = std::time::Instant::now();
        let mut opt = Adam::new(self.options.learning_rate * 0.5);
        let n = train.n_examples();
        let bs = self.options.batch_size.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        let (mut last_val, _) = self.validate(valid);
        let mut flat = 0usize;
        let mut epochs_run = 0usize;
        for _ in 0..max_epochs {
            epochs_run += 1;
            order.shuffle(&mut self.rng);
            for chunk in order.chunks(bs) {
                let batch = train.batch(chunk);
                self.step(&batch, &mut opt);
            }
            let (val, _) = self.validate(valid);
            // "Until the validation error does not change for three
            // consecutive epochs" — change below 1% counts as unchanged.
            if (val - last_val).abs() <= 0.01 * last_val.max(1e-9) {
                flat += 1;
                if flat >= flat_epochs {
                    break;
                }
            } else {
                flat = 0;
            }
            last_val = val;
        }
        TrainReport {
            epochs_run,
            best_val_msle: last_val,
            train_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Current validation MSLE (used by the §8 update monitor).
    pub fn validation_msle(&self, valid: &TrainTensors) -> f64 {
        self.validate(valid).0
    }
}

/// Convenience: trains CardNet (or CardNet-A via `config.encoder`) from
/// workloads, returning the trainer (model + weights) and report.
pub fn train_cardnet(
    fx: &dyn FeatureExtractor,
    train_wl: &Workload,
    valid_wl: &Workload,
    config: CardNetConfig,
    options: TrainerOptions,
) -> (Trainer, TrainReport) {
    let train = prepare_tensors(train_wl, fx);
    let valid = prepare_tensors(valid_wl, fx);
    let p_tau = tau_distribution(fx, &valid_wl.thresholds, config.n_out);
    let mut trainer = Trainer::new(config, options, p_tau);
    let report = trainer.fit(&train, &valid);
    (trainer, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EncoderKind;
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_fx::build_extractor;

    fn small_setup() -> (Box<dyn FeatureExtractor>, Workload, Workload) {
        let ds = hm_imagenet(SynthConfig::new(300, 42));
        let fx = build_extractor(&ds, 20, 1);
        let wl = Workload::sample_from(&ds, 0.4, 10, 2);
        let split = wl.split(3);
        (fx, split.train, split.valid)
    }

    fn tiny_config(fx: &dyn FeatureExtractor, enc: EncoderKind) -> CardNetConfig {
        let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
        cfg.encoder = enc;
        cfg.phi_hidden = vec![32, 24];
        cfg.z_dim = 16;
        cfg.vae_hidden = vec![32];
        cfg.vae_latent = 8;
        cfg
    }

    #[test]
    fn training_reduces_validation_loss() {
        let (fx, train_wl, valid_wl) = small_setup();
        let cfg = tiny_config(fx.as_ref(), EncoderKind::Shared);
        let train = prepare_tensors(&train_wl, fx.as_ref());
        let valid = prepare_tensors(&valid_wl, fx.as_ref());
        let p = tau_distribution(fx.as_ref(), &valid_wl.thresholds, cfg.n_out);
        let mut opts = TrainerOptions::quick();
        opts.epochs = 12;
        opts.vae_epochs = 4;
        let mut trainer = Trainer::new(cfg, opts, p);
        let before = trainer.validation_msle(&valid);
        let report = trainer.fit(&train, &valid);
        assert!(
            report.best_val_msle < before,
            "no improvement: {} -> {}",
            before,
            report.best_val_msle
        );
    }

    #[test]
    fn accelerated_variant_trains_too() {
        let (fx, train_wl, valid_wl) = small_setup();
        let cfg = tiny_config(fx.as_ref(), EncoderKind::Accelerated);
        let mut opts = TrainerOptions::quick();
        opts.epochs = 8;
        opts.vae_epochs = 3;
        let (trainer, report) = train_cardnet(fx.as_ref(), &train_wl, &valid_wl, cfg, opts);
        assert!(report.best_val_msle.is_finite());
        // Estimates must still be monotone after training.
        let x = cardest_nn::Matrix::from_vec(
            1,
            fx.dim(),
            fx.extract(&train_wl.queries[0].query).to_f32(),
        );
        let mut prev = 0.0;
        for tau in 0..=fx.tau_max() {
            let est = trainer.model.infer_sum(&trainer.store, &x, tau);
            assert!(est >= prev - 1e-9);
            prev = est;
        }
    }

    #[test]
    fn omega_update_targets_worsening_distances() {
        let (fx, _, valid_wl) = small_setup();
        let cfg = tiny_config(fx.as_ref(), EncoderKind::Shared);
        let n_out = cfg.n_out;
        let p = tau_distribution(fx.as_ref(), &valid_wl.thresholds, n_out);
        let mut trainer = Trainer::new(cfg, TrainerOptions::quick(), p);
        let prev = vec![1.0f32; n_out];
        let mut cur = vec![0.5f32; n_out];
        cur[3] = 2.0; // distance 3 got worse
        cur[5] = 1.5; // distance 5 got worse (half as much)
        trainer.update_omega(&prev, &cur);
        let w3 = trainer.omega.get(0, 3);
        let w5 = trainer.omega.get(0, 5);
        assert!((w3 - 2.0 / 3.0).abs() < 1e-5, "w3 = {w3}");
        assert!((w5 - 1.0 / 3.0).abs() < 1e-5, "w5 = {w5}");
        let total: f32 = (0..n_out).map(|i| trainer.omega.get(0, i)).sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert_eq!(trainer.omega.get(0, 0), 0.0);
    }

    #[test]
    fn omega_falls_back_to_uniform_when_all_improve() {
        let (fx, _, valid_wl) = small_setup();
        let cfg = tiny_config(fx.as_ref(), EncoderKind::Shared);
        let n_out = cfg.n_out;
        let p = tau_distribution(fx.as_ref(), &valid_wl.thresholds, n_out);
        let mut trainer = Trainer::new(cfg, TrainerOptions::quick(), p);
        trainer.update_omega(&vec![1.0; n_out], &vec![0.2; n_out]);
        for i in 0..n_out {
            assert!((trainer.omega.get(0, i) - 1.0 / n_out as f32).abs() < 1e-6);
        }
    }
}
