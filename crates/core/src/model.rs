//! The CardNet regression model (§5) and its accelerated variant (§7).
//!
//! Encoder Ψ: the representation network Γ concatenates the raw binary
//! vector with its VAE latent (`x' = [x ; VAE(x, ε)]`, §5.2.1); a learned
//! distance-embedding matrix `E` supplies one embedding per Hamming distance
//! value (§5.2.2); a shared FNN Φ maps `[x' ; e_i]` to the final embedding
//! `z_i` (§5.2.3). Decoder `g_i(x) = ReLU(w_iᵀ z_i + b_i)` yields the
//! cardinality of distance exactly `i`; the estimate at threshold τ is the
//! prefix sum (Eq. 1) — deterministic and non-negative, hence monotone
//! (Lemma 2).
//!
//! **CardNet-A** replaces the per-distance Φ applications with a single FNN
//! Φ′ whose hidden layer `f_j` also emits region `j` of *all* `τ_max + 1`
//! embeddings through a head matrix (Figure 4), cutting estimation cost from
//! `O((τ+1)·|Φ|)` to `O(|Φ′|)`.

use std::time::Instant;

use cardest_nn::kernels::partition_rows;
use cardest_nn::layers::{Activation, Dense, Mlp};
use cardest_nn::{init, Matrix, Parallelism, ParamId, ParamStore, Tape, Vae, VaeConfig, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which encoder topology to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderKind {
    /// CardNet: shared Φ applied once per distance value.
    Shared,
    /// CardNet-A: multi-head Φ′ emitting all embeddings at once (§7).
    Accelerated,
}

/// Hyperparameters. Defaults follow §9.1.3 scaled for CPU training
/// (the paper: Φ = 512/512/256/256, z = 60, e = 5, VAE = 256/128/128).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CardNetConfig {
    /// Input dimensionality `d` (from the feature extractor).
    pub input_dim: usize,
    /// Decoder count `τ_max + 1`.
    pub n_out: usize,
    pub encoder: EncoderKind,
    /// Hidden sizes of Φ / Φ′.
    pub phi_hidden: Vec<usize>,
    /// Final embedding dimensionality |z|.
    pub z_dim: usize,
    /// Distance-embedding dimensionality |e| (paper: 5).
    pub e_dim: usize,
    /// VAE hidden sizes; empty disables the VAE (ablation −VAE).
    pub vae_hidden: Vec<usize>,
    /// VAE latent dimensionality.
    pub vae_latent: usize,
    /// Ablation switch: `false` replaces incremental prediction with a direct
    /// regression on `[x' ; e_τ]` (the paper's comparison in Table 7).
    pub incremental: bool,
}

impl CardNetConfig {
    /// CPU-scaled defaults.
    pub fn new(input_dim: usize, n_out: usize) -> Self {
        CardNetConfig {
            input_dim,
            n_out,
            encoder: EncoderKind::Shared,
            phi_hidden: vec![96, 64],
            z_dim: 32,
            e_dim: 5,
            vae_hidden: vec![96, 48],
            vae_latent: 20,
            incremental: true,
        }
    }

    pub fn accelerated(mut self) -> Self {
        self.encoder = EncoderKind::Accelerated;
        self
    }

    pub fn without_vae(mut self) -> Self {
        self.vae_hidden.clear();
        self.vae_latent = 0;
        self
    }

    pub fn without_incremental(mut self) -> Self {
        self.incremental = false;
        self
    }

    fn uses_vae(&self) -> bool {
        !self.vae_hidden.is_empty() && self.vae_latent > 0
    }

    /// Width of `x' = [x ; VAE latent]`.
    fn xprime_dim(&self) -> usize {
        self.input_dim + if self.uses_vae() { self.vae_latent } else { 0 }
    }
}

/// The regression model `g`. Parameters live in an external [`ParamStore`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CardNetModel {
    pub config: CardNetConfig,
    vae: Option<Vae>,
    /// Distance-embedding matrix `E`: `n_out × e_dim`.
    e: ParamId,
    /// Shared Φ (CardNet) — input `[x' ; e_i]`.
    phi: Option<Mlp>,
    /// Accelerated Φ′ (CardNet-A): hidden chain + per-layer region heads.
    phi_a: Option<PhiAccelerated>,
    /// Decoder weights: `n_out × z_dim` (row i = w_i).
    dec_w: ParamId,
    /// Decoder biases: `1 × n_out`.
    dec_b: ParamId,
}

/// Φ′ of Figure 4: hidden layers `f_j`, each with a head emitting region `j`
/// of all `n_out` embeddings.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PhiAccelerated {
    hidden: Vec<Dense>,
    /// `heads[j]`: `hidden_j × (n_out · region_j)`.
    heads: Vec<ParamId>,
    /// Region widths per layer; sums to `z_dim`.
    regions: Vec<usize>,
}

/// Training forward-pass outputs.
pub struct ModelForward {
    /// `n × n_out` per-distance predictions (`ĉ_i ≥ 0`).
    pub dist: Var,
    /// `n × n_out` cumulative predictions (`ĉ(x, τ)` for every τ).
    pub cum: Var,
    /// VAE loss term, if the VAE is enabled.
    pub vae_loss: Option<Var>,
}

impl CardNetModel {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, config: CardNetConfig) -> Self {
        let vae = config.uses_vae().then(|| {
            Vae::new(
                store,
                rng,
                VaeConfig::new(
                    config.input_dim,
                    config.vae_hidden.clone(),
                    config.vae_latent,
                ),
            )
        });
        // §5.2.2: E initialized from the standard normal distribution.
        let e = store.register(
            "cardnet.E",
            init::std_normal(rng, config.n_out, config.e_dim),
        );
        let (phi, phi_a) = match config.encoder {
            EncoderKind::Shared => {
                let phi = Mlp::new(
                    store,
                    rng,
                    "cardnet.phi",
                    config.xprime_dim() + config.e_dim,
                    &config.phi_hidden,
                    config.z_dim,
                    Activation::Relu,
                    Activation::Relu,
                );
                (Some(phi), None)
            }
            EncoderKind::Accelerated => {
                let n_layers = config.phi_hidden.len().max(1);
                // Split z_dim into per-layer regions, earlier layers get the
                // remainder so Σ regions = z_dim.
                let base = config.z_dim / n_layers;
                let mut regions = vec![base; n_layers];
                for region in regions.iter_mut().take(config.z_dim % n_layers) {
                    *region += 1;
                }
                let mut hidden = Vec::with_capacity(n_layers);
                let mut heads = Vec::with_capacity(n_layers);
                let mut prev = config.xprime_dim();
                for (j, &h) in config.phi_hidden.iter().enumerate() {
                    hidden.push(Dense::new(
                        store,
                        rng,
                        &format!("cardnet.phiA.{j}"),
                        prev,
                        h,
                        Activation::Relu,
                    ));
                    heads.push(store.register(
                        format!("cardnet.phiA.head{j}"),
                        init::he_normal(rng, h, config.n_out * regions[j]),
                    ));
                    prev = h;
                }
                (
                    None,
                    Some(PhiAccelerated {
                        hidden,
                        heads,
                        regions,
                    }),
                )
            }
        };
        let dec_w = store.register(
            "cardnet.dec_w",
            init::xavier_uniform(rng, config.n_out, config.z_dim),
        );
        // Positive bias keeps every ReLU decoder alive at initialization —
        // a decoder that starts at 0 output receives no gradient and would
        // predict 0 forever.
        let dec_b = store.register("cardnet.dec_b", Matrix::full(1, config.n_out, 1.0));
        CardNetModel {
            config,
            vae,
            e,
            phi,
            phi_a,
            dec_w,
            dec_b,
        }
    }

    pub fn vae(&self) -> Option<&Vae> {
        self.vae.as_ref()
    }

    /// Training forward pass over a batch `x` (`n × d` binary as f32).
    ///
    /// `vae_beta` scales the KL term inside the VAE loss; `noise_rng` draws
    /// the reparameterization noise (training is stochastic, §5.2.1).
    pub fn forward_train(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Matrix,
        noise_rng: &mut impl Rng,
        vae_beta: f32,
    ) -> ModelForward {
        let n = x.rows();
        let xv = tape.input(x);
        let (xprime, vae_loss) = match &self.vae {
            Some(vae) => {
                let fwd = vae.forward_train(tape, store, xv, noise_rng, vae_beta);
                (tape.hconcat(&[xv, fwd.z]), Some(fwd.loss))
            }
            None => (xv, None),
        };
        let dist = self.decode_all(tape, store, xprime, n);
        // Incremental prediction (Eq. 1): cumulative = prefix sum of the
        // per-distance outputs. The −incremental ablation (Table 7) instead
        // reads each decoder as a *direct* cumulative prediction at τ = i.
        let cum = if self.config.incremental {
            self.prefix_sum(tape, dist, n)
        } else {
            dist
        };
        ModelForward {
            dist,
            cum,
            vae_loss,
        }
    }

    /// Per-distance predictions for all `n_out` decoders on the tape.
    fn decode_all(&self, tape: &mut Tape, store: &ParamStore, xprime: Var, n: usize) -> Var {
        let e = tape.param(store, self.e);
        let dec_w = tape.param(store, self.dec_w);
        let dec_b = tape.param(store, self.dec_b);
        let n_out = self.config.n_out;

        let z_all: Vec<Var> = match (&self.phi, &self.phi_a) {
            (Some(phi), _) => {
                // CardNet: Φ([x' ; e_i]) per distance i (shared parameters).
                (0..n_out)
                    .map(|i| {
                        let ei = tape.slice_rows(e, i, i + 1);
                        let eb = tape.broadcast_row(ei, n);
                        let xi = tape.hconcat(&[xprime, eb]);
                        phi.forward(tape, store, xi)
                    })
                    .collect()
            }
            (None, Some(pa)) => {
                // CardNet-A: one pass through the hidden chain; each layer's
                // head emits its region of every embedding (Figure 4).
                let mut h = xprime;
                let mut region_blocks: Vec<Var> = Vec::with_capacity(pa.hidden.len());
                for (layer, &head) in pa.hidden.iter().zip(&pa.heads) {
                    h = layer.forward(tape, store, h);
                    let head_v = tape.param(store, head);
                    region_blocks.push(tape.matmul(h, head_v)); // n × (n_out·r_j)
                }
                (0..n_out)
                    .map(|i| {
                        let parts: Vec<Var> = region_blocks
                            .iter()
                            .zip(&pa.regions)
                            .map(|(&block, &r)| tape.slice_cols(block, i * r, (i + 1) * r))
                            .collect();
                        let z = tape.hconcat(&parts);
                        tape.relu(z)
                    })
                    .collect()
            }
            _ => unreachable!("model has exactly one encoder"),
        };

        // Decoder g_i = ReLU(z_i · w_i + b_i); computed per distance, then
        // concatenated to n × n_out.
        let outs: Vec<Var> = z_all
            .iter()
            .enumerate()
            .map(|(i, &z)| {
                let wi = tape.slice_rows(dec_w, i, i + 1); // 1 × z_dim
                let raw = tape.matmul_rowvec(z, wi);
                let bi = tape.slice_cols(dec_b, i, i + 1);
                let bb = tape.broadcast_row(bi, n);
                let sum = tape.add(raw, bb);
                tape.relu(sum)
            })
            .collect();
        tape.hconcat(&outs)
    }

    /// `cum[:, τ] = Σ_{i≤τ} dist[:, i]` via multiplication with a constant
    /// upper-triangular ones matrix.
    fn prefix_sum(&self, tape: &mut Tape, dist: Var, _n: usize) -> Var {
        let n_out = self.config.n_out;
        let tri = Matrix::from_fn(n_out, n_out, |i, j| if i <= j { 1.0 } else { 0.0 });
        let tri = tape.input(tri);
        tape.matmul(dist, tri)
    }

    /// Inference fast path: per-distance predictions for one query (row
    /// vector `1 × d`), deterministic (VAE mean latent). Only the first
    /// `tau + 1` decoders are evaluated for the shared encoder — the paper's
    /// `O((τ+1)|Φ|)` cost — while the accelerated encoder computes all
    /// embeddings in one pass (`O(|Φ′|)`).
    pub fn infer_dist(&self, store: &ParamStore, x: &Matrix, tau: usize) -> Vec<f32> {
        crate::metrics::record_encoder_pass();
        crate::metrics::record_decoder_calls(tau.min(self.config.n_out - 1) as u64 + 1);
        let tau = tau.min(self.config.n_out - 1);
        let xprime = match &self.vae {
            Some(vae) => {
                let mu = vae.latent_mean(store, x);
                Matrix::hconcat(&[x, &mu])
            }
            None => x.clone(),
        };
        let e = store.value(self.e);
        let dec_w = store.value(self.dec_w);
        let dec_b = store.value(self.dec_b);

        match (&self.phi, &self.phi_a) {
            (Some(phi), _) => (0..=tau)
                .map(|i| {
                    let mut xi = Matrix::zeros(x.rows(), xprime.cols() + self.config.e_dim);
                    for r in 0..x.rows() {
                        let row = xi.row_mut(r);
                        row[..xprime.cols()].copy_from_slice(xprime.row(r));
                        row[xprime.cols()..].copy_from_slice(e.row(i));
                    }
                    let z = phi.infer(store, &xi);
                    decode_row(z.row(0), dec_w, dec_b, i)
                })
                .collect(),
            (None, Some(pa)) => {
                let mut h = xprime;
                let mut blocks: Vec<Matrix> = Vec::with_capacity(pa.hidden.len());
                for (layer, &head) in pa.hidden.iter().zip(&pa.heads) {
                    h = layer.infer(store, &h);
                    blocks.push(h.matmul(store.value(head)));
                }
                (0..=tau)
                    .map(|i| {
                        let mut z = Matrix::zeros(1, self.config.z_dim);
                        let mut at = 0;
                        for (block, &r) in blocks.iter().zip(&pa.regions) {
                            let zr = z.row_mut(0);
                            for (k, v) in zr[at..at + r].iter_mut().enumerate() {
                                *v = block.get(0, i * r + k).max(0.0);
                            }
                            at += r;
                        }
                        decode_row(z.row(0), dec_w, dec_b, i)
                    })
                    .collect()
            }
            _ => unreachable!("model has exactly one encoder"),
        }
    }

    /// The estimate at threshold τ: the prefix sum `Σ_{i≤τ} g_i(x)` (Eq. 1)
    /// for incremental models, or the τ-th decoder directly for the
    /// −incremental ablation.
    pub fn infer_sum(&self, store: &ParamStore, x: &Matrix, tau: usize) -> f64 {
        let dist = self.infer_dist(store, x, tau);
        if self.config.incremental {
            dist.iter().map(|&v| f64::from(v)).sum()
        } else {
            dist.last().map_or(0.0, |&v| f64::from(v))
        }
    }

    /// Full deterministic encoder pass for one query (row vector `1 × d`):
    /// the per-distance embeddings `z_0 … z_{n_out−1}` stacked into an
    /// `n_out × z_dim` matrix (output activations applied). This is the
    /// cacheable half of a prepared query: decoding any τ from the returned
    /// matrix via [`CardNetModel::decode_prefix`] reproduces
    /// [`CardNetModel::infer_dist`] bit for bit, because each row is computed
    /// with exactly the per-distance arithmetic of the single-shot path.
    pub fn encode_all(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        self.encode_all_with(store, x, Parallelism::serial())
    }

    /// [`CardNetModel::encode_all`] with an explicit kernel worker budget.
    ///
    /// For the shared encoder the `n_out` per-distance Φ passes are
    /// independent, so they partition across workers — each embedding row is
    /// still computed by the exact serial arithmetic, so the result is
    /// bit-identical for any `par`.
    pub fn encode_all_with(&self, store: &ParamStore, x: &Matrix, par: Parallelism) -> Matrix {
        crate::metrics::record_encoder_pass();
        let t_enc = Instant::now();
        let n_out = self.config.n_out;
        let xprime = match &self.vae {
            Some(vae) => {
                let mu = vae.latent_mean(store, x);
                Matrix::hconcat(&[x, &mu])
            }
            None => x.clone(),
        };
        let e = store.value(self.e);
        let mut z_all = Matrix::zeros(n_out, self.config.z_dim);

        match (&self.phi, &self.phi_a) {
            (Some(phi), _) => {
                let workers = par.workers(n_out, n_out * phi.num_params());
                let z_dim = self.config.z_dim;
                let xprime = &xprime;
                partition_rows(z_all.as_mut_slice(), z_dim, workers, |first_row, chunk| {
                    for (i_local, z_row) in chunk.chunks_mut(z_dim).enumerate() {
                        let i = first_row + i_local;
                        let mut xi = Matrix::zeros(x.rows(), xprime.cols() + self.config.e_dim);
                        for r in 0..x.rows() {
                            let row = xi.row_mut(r);
                            row[..xprime.cols()].copy_from_slice(xprime.row(r));
                            row[xprime.cols()..].copy_from_slice(e.row(i));
                        }
                        let z = phi.infer(store, &xi);
                        z_row.copy_from_slice(z.row(0));
                    }
                });
            }
            (None, Some(pa)) => {
                let mut h = xprime;
                let mut blocks: Vec<Matrix> = Vec::with_capacity(pa.hidden.len());
                for (layer, &head) in pa.hidden.iter().zip(&pa.heads) {
                    h = layer.infer(store, &h);
                    blocks.push(h.matmul(store.value(head)));
                }
                for i in 0..n_out {
                    let zr = z_all.row_mut(i);
                    let mut at = 0;
                    for (block, &r) in blocks.iter().zip(&pa.regions) {
                        for (k, v) in zr[at..at + r].iter_mut().enumerate() {
                            *v = block.get(0, i * r + k).max(0.0);
                        }
                        at += r;
                    }
                }
            }
            _ => unreachable!("model has exactly one encoder"),
        }
        crate::metrics::record_encoder_time(t_enc.elapsed());
        z_all
    }

    /// Per-distance predictions `ĉ_0 … ĉ_τ` decoded from a cached
    /// [`CardNetModel::encode_all`] matrix — the per-τ half of a prepared
    /// query. No encoder work happens here: a τ-sweep pays for the embeddings
    /// once and re-runs only these dot products.
    pub fn decode_prefix(&self, store: &ParamStore, z_all: &Matrix, tau: usize) -> Vec<f32> {
        let tau = tau.min(self.config.n_out - 1);
        crate::metrics::record_decoder_calls(tau as u64 + 1);
        let t_dec = Instant::now();
        let dec_w = store.value(self.dec_w);
        let dec_b = store.value(self.dec_b);
        let out = (0..=tau)
            .map(|i| decode_row(z_all.row(i), dec_w, dec_b, i))
            .collect();
        crate::metrics::record_decoder_time(t_dec.elapsed());
        out
    }

    /// Batched per-distance inference across all decoders: `n × n_out`
    /// matrix. Used by validation (dynamic-ω updates need per-column losses)
    /// and by the batch-first estimation path (one encoder pass per batch).
    pub fn infer_dist_batch(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        self.infer_dist_batch_with(store, x, Parallelism::serial())
    }

    /// [`CardNetModel::infer_dist_batch`] with an explicit kernel worker
    /// budget, bit-identical for any `par`.
    ///
    /// Large batches partition their **rows** across workers, each running
    /// the full serial pipeline on its chunk — one spawn amortized over the
    /// whole model, and every row's arithmetic is row-independent, so the
    /// output matches the serial batch bit for bit. Small batches fall
    /// through to kernel-level threading (which in turn stays serial below
    /// its own work threshold).
    pub fn infer_dist_batch_with(
        &self,
        store: &ParamStore,
        x: &Matrix,
        par: Parallelism,
    ) -> Matrix {
        crate::metrics::record_encoder_pass();
        crate::metrics::record_decoder_calls((x.rows() * self.config.n_out) as u64);
        let n = x.rows();
        let n_out = self.config.n_out;
        // Per-row cost ≈ one multiply-add per parameter.
        let workers = par.workers(n, n * store.num_scalars());
        if workers <= 1 {
            return self.infer_dist_batch_rows(store, x, par);
        }
        let d = x.cols();
        let mut out = Matrix::zeros(n, n_out);
        partition_rows(out.as_mut_slice(), n_out, workers, |first_row, chunk| {
            let rows_here = chunk.len() / n_out;
            let sub = Matrix::from_vec(
                rows_here,
                d,
                x.as_slice()[first_row * d..(first_row + rows_here) * d].to_vec(),
            );
            // One worker per chunk, but a backend pinned by the caller must
            // survive the coarse fan-out into the per-chunk kernels.
            let dist = self.infer_dist_batch_rows(store, &sub, par.serial_worker());
            chunk.copy_from_slice(dist.as_slice());
        });
        out
    }

    /// The serial-order batch pipeline (no metrics recording; both the
    /// serial and the row-partitioned paths of
    /// [`CardNetModel::infer_dist_batch_with`] funnel through here).
    fn infer_dist_batch_rows(&self, store: &ParamStore, x: &Matrix, par: Parallelism) -> Matrix {
        let n_out = self.config.n_out;
        // Encoder vs decoder wall time, accumulated across the interleaved
        // per-distance loop and recorded once at the end (two clock reads
        // per distance value — noise next to the matmuls they bracket).
        let mut enc_ns = 0u64;
        let mut dec_ns = 0u64;
        let t0 = Instant::now();
        let xprime = match &self.vae {
            Some(vae) => {
                let mu = vae.latent_mean_with(store, x, par);
                Matrix::hconcat(&[x, &mu])
            }
            None => x.clone(),
        };
        let e = store.value(self.e);
        let dec_w = store.value(self.dec_w);
        let dec_b = store.value(self.dec_b);
        let n = x.rows();
        let mut out = Matrix::zeros(n, n_out);
        enc_ns += t0.elapsed().as_nanos() as u64;

        match (&self.phi, &self.phi_a) {
            (Some(phi), _) => {
                for i in 0..n_out {
                    let t_enc = Instant::now();
                    let mut xi = Matrix::zeros(n, xprime.cols() + self.config.e_dim);
                    for r in 0..n {
                        let row = xi.row_mut(r);
                        row[..xprime.cols()].copy_from_slice(xprime.row(r));
                        row[xprime.cols()..].copy_from_slice(e.row(i));
                    }
                    let z = phi.infer_with(store, &xi, par);
                    let t_dec = Instant::now();
                    enc_ns += (t_dec - t_enc).as_nanos() as u64;
                    for r in 0..n {
                        let mut acc = dec_b.get(0, i);
                        for (zv, wv) in z.row(r).iter().zip(dec_w.row(i)) {
                            acc += zv * wv;
                        }
                        out.set(r, i, acc.max(0.0));
                    }
                    dec_ns += t_dec.elapsed().as_nanos() as u64;
                }
            }
            (None, Some(pa)) => {
                let t_enc = Instant::now();
                let mut h = xprime;
                let mut blocks: Vec<Matrix> = Vec::with_capacity(pa.hidden.len());
                for (layer, &head) in pa.hidden.iter().zip(&pa.heads) {
                    h = layer.infer_with(store, &h, par);
                    blocks.push(h.matmul_with(store.value(head), par));
                }
                enc_ns += t_enc.elapsed().as_nanos() as u64;
                let t_dec = Instant::now();
                for r in 0..n {
                    for i in 0..n_out {
                        let mut acc = dec_b.get(0, i);
                        let mut at = 0;
                        for (block, &rw) in blocks.iter().zip(&pa.regions) {
                            for k in 0..rw {
                                let zv = block.get(r, i * rw + k).max(0.0);
                                acc += zv * dec_w.get(i, at + k);
                            }
                            at += rw;
                        }
                        out.set(r, i, acc.max(0.0));
                    }
                }
                dec_ns += t_dec.elapsed().as_nanos() as u64;
            }
            _ => unreachable!("model has exactly one encoder"),
        }
        crate::metrics::record_encoder_time(std::time::Duration::from_nanos(enc_ns));
        crate::metrics::record_decoder_time(std::time::Duration::from_nanos(dec_ns));
        out
    }
}

fn decode_row(z: &[f32], dec_w: &Matrix, dec_b: &Matrix, i: usize) -> f32 {
    let mut acc = dec_b.get(0, i);
    for (zv, wv) in z.iter().zip(dec_w.row(i)) {
        acc += zv * wv;
    }
    acc.max(0.0)
}

/// `matmul` against a `1 × k` row vector treated as `k × 1` — a tape helper
/// for the decoder dot products.
trait TapeDecodeExt {
    fn matmul_rowvec(&mut self, a: Var, row: Var) -> Var;
}

impl TapeDecodeExt for Tape {
    fn matmul_rowvec(&mut self, a: Var, row: Var) -> Var {
        // (n × k) @ (k × 1): transpose the row on the tape by slicing —
        // a 1×k row reshaped via matmul with its transpose is overkill, so we
        // multiply element-wise and sum columns instead:
        // a ⊙ broadcast(row) summed over columns = a @ rowᵀ.
        let n = self.value(a).rows();
        let rb = self.broadcast_row(row, n);
        let prod = self.mul(a, rb);
        // Sum over columns via matmul with a ones column vector.
        let k = self.value(a).cols();
        let ones = self.input(Matrix::full(k, 1, 1.0));
        self.matmul(prod, ones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_nn::rng;

    fn toy_model(encoder: EncoderKind, with_vae: bool) -> (CardNetModel, ParamStore) {
        let mut store = ParamStore::new();
        let mut r = rng::seeded(7);
        let mut cfg = CardNetConfig::new(12, 5);
        cfg.encoder = encoder;
        cfg.phi_hidden = vec![16, 8];
        cfg.z_dim = 8;
        if !with_vae {
            cfg = cfg.without_vae();
        } else {
            cfg.vae_hidden = vec![16];
            cfg.vae_latent = 4;
        }
        let model = CardNetModel::new(&mut store, &mut r, cfg);
        (model, store)
    }

    fn toy_x(n: usize) -> Matrix {
        Matrix::from_fn(n, 12, |r, c| f32::from(u8::from((r + c) % 3 == 0)))
    }

    #[test]
    fn forward_shapes_shared() {
        let (model, store) = toy_model(EncoderKind::Shared, true);
        let mut tape = Tape::new();
        let mut nrng = rng::seeded(1);
        let fwd = model.forward_train(&mut tape, &store, toy_x(4), &mut nrng, 0.1);
        assert_eq!(tape.value(fwd.dist).shape(), (4, 5));
        assert_eq!(tape.value(fwd.cum).shape(), (4, 5));
        assert!(fwd.vae_loss.is_some());
    }

    #[test]
    fn forward_shapes_accelerated() {
        let (model, store) = toy_model(EncoderKind::Accelerated, false);
        let mut tape = Tape::new();
        let mut nrng = rng::seeded(2);
        let fwd = model.forward_train(&mut tape, &store, toy_x(3), &mut nrng, 0.1);
        assert_eq!(tape.value(fwd.dist).shape(), (3, 5));
        assert!(fwd.vae_loss.is_none());
    }

    #[test]
    fn cumulative_is_prefix_sum_of_dist() {
        let (model, store) = toy_model(EncoderKind::Shared, false);
        let mut tape = Tape::new();
        let mut nrng = rng::seeded(3);
        let fwd = model.forward_train(&mut tape, &store, toy_x(4), &mut nrng, 0.1);
        let dist = tape.value(fwd.dist).clone();
        let cum = tape.value(fwd.cum).clone();
        for r in 0..4 {
            let mut acc = 0.0;
            for j in 0..5 {
                acc += dist.get(r, j);
                assert!((cum.get(r, j) - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn per_distance_outputs_are_nonnegative() {
        for enc in [EncoderKind::Shared, EncoderKind::Accelerated] {
            let (model, store) = toy_model(enc, false);
            let x = toy_x(1);
            let d = model.infer_dist(&store, &x, 4);
            assert!(d.iter().all(|&v| v >= 0.0), "{enc:?}: {d:?}");
        }
    }

    #[test]
    fn inference_is_monotone_in_tau() {
        for enc in [EncoderKind::Shared, EncoderKind::Accelerated] {
            let (model, store) = toy_model(enc, true);
            let x = toy_x(1);
            let mut prev = 0.0;
            for tau in 0..5 {
                let est = model.infer_sum(&store, &x, tau);
                assert!(est >= prev - 1e-9, "{enc:?}: τ={tau}: {est} < {prev}");
                prev = est;
            }
        }
    }

    #[test]
    fn train_and_infer_paths_agree_without_vae() {
        // With the VAE disabled both paths are deterministic and identical.
        for enc in [EncoderKind::Shared, EncoderKind::Accelerated] {
            let (model, store) = toy_model(enc, false);
            let x = toy_x(2);
            let mut tape = Tape::new();
            let mut nrng = rng::seeded(4);
            let fwd = model.forward_train(&mut tape, &store, x.clone(), &mut nrng, 0.1);
            let train_dist = tape.value(fwd.dist).clone();
            let infer = model.infer_dist_batch(&store, &x);
            assert!(
                train_dist.max_abs_diff(&infer) < 1e-4,
                "{enc:?}: paths diverge by {}",
                train_dist.max_abs_diff(&infer)
            );
        }
    }

    #[test]
    fn encode_then_decode_matches_infer_dist_bitwise() {
        // The prepared-query fast path (encode once, decode per τ) must be
        // arithmetic-for-arithmetic the single-shot path.
        for enc in [EncoderKind::Shared, EncoderKind::Accelerated] {
            for with_vae in [false, true] {
                let (model, store) = toy_model(enc, with_vae);
                let x = toy_x(1);
                let z_all = model.encode_all(&store, &x);
                assert_eq!(z_all.shape(), (5, 8));
                for tau in 0..5 {
                    let direct = model.infer_dist(&store, &x, tau);
                    let cached = model.decode_prefix(&store, &z_all, tau);
                    assert_eq!(direct.len(), cached.len());
                    for (a, b) in direct.iter().zip(&cached) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{enc:?} vae={with_vae} τ={tau}");
                    }
                }
            }
        }
    }

    #[test]
    fn infer_dist_truncates_at_tau() {
        let (model, store) = toy_model(EncoderKind::Shared, false);
        let x = toy_x(1);
        assert_eq!(model.infer_dist(&store, &x, 2).len(), 3);
        assert_eq!(model.infer_dist(&store, &x, 99).len(), 5); // clamped
    }

    #[test]
    fn batch_row_partition_is_bit_identical() {
        // The row-partitioned batch pipeline (and the per-distance encoder
        // fan-out) must reproduce the serial batch bit for bit, whatever the
        // worker count — including workers that don't divide the row count.
        for enc in [EncoderKind::Shared, EncoderKind::Accelerated] {
            for with_vae in [false, true] {
                let (model, store) = toy_model(enc, with_vae);
                let x = toy_x(9);
                let want = model.infer_dist_batch(&store, &x);
                for t in [2usize, 3, 4, 8] {
                    let got =
                        model.infer_dist_batch_with(&store, &x, Parallelism::exact_threads(t));
                    assert_eq!(want.shape(), got.shape());
                    for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{enc:?} vae={with_vae} threads={t}: {a} vs {b}"
                        );
                    }
                }
                let z_serial = model.encode_all(&store, &toy_x(1));
                for t in [2usize, 4] {
                    let z_par =
                        model.encode_all_with(&store, &toy_x(1), Parallelism::exact_threads(t));
                    for (a, b) in z_serial.as_slice().iter().zip(z_par.as_slice()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{enc:?} encode_all threads={t}");
                    }
                }
            }
        }
    }

    #[test]
    fn batch_inference_matches_single_query() {
        for enc in [EncoderKind::Shared, EncoderKind::Accelerated] {
            let (model, store) = toy_model(enc, true);
            let x = toy_x(3);
            let batch = model.infer_dist_batch(&store, &x);
            for r in 0..3 {
                let single = Matrix::from_vec(1, 12, x.row(r).to_vec());
                let d = model.infer_dist(&store, &single, 4);
                for (j, &v) in d.iter().enumerate() {
                    assert!(
                        (batch.get(r, j) - v).abs() < 1e-4,
                        "{enc:?} row {r} col {j}: {} vs {v}",
                        batch.get(r, j)
                    );
                }
            }
        }
    }
}
