//! **CardNet / CardNet-A** — the paper's contribution: monotonic deep
//! cardinality estimation of similarity selection.
//!
//! The estimator is `ĉ = g ∘ h`: feature extraction `h` (the `cardest-fx`
//! crate) maps any record + threshold into a Hamming space, and the
//! regression `g` (this crate) predicts the cardinality as the sum of
//! per-distance decoders `g(x, τ) = Σ_{i=0..τ} g_i(x)` (§3.3, Eq. 1).
//! Because every `g_i` is deterministic and non-negative (ReLU decoder over a
//! deterministic encoder), the estimate is monotonically increasing in the
//! threshold — Lemmas 1 and 2.
//!
//! Modules:
//! * [`estimator`] — the [`CardinalityEstimator`] trait every method in the
//!   workspace implements, plus the trained CardNet wrapper;
//! * [`features`] — workload → training tensors (per-distance targets, `P(τ)`);
//! * [`model`] — the encoder Ψ (VAE ⊕ distance embeddings ⊕ shared Φ),
//!   decoders, and the accelerated Φ′ of §7;
//! * [`train`] — MSLE + dynamic per-distance loss (Eq. 2–3), validation-driven
//!   ω updates, VAE pre-training, snapshots;
//! * [`incremental`] — incremental learning for dataset updates (§8).

pub mod estimator;
pub mod features;
pub mod incremental;
pub mod model;
pub mod snapshot;
pub mod train;

pub use estimator::{CardNetEstimator, CardinalityEstimator};
pub use features::{prepare_tensors, TrainTensors};
pub use model::{CardNetConfig, CardNetModel, EncoderKind};
pub use train::{train_cardnet, TrainReport, Trainer, TrainerOptions};
