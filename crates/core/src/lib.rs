//! **CardNet / CardNet-A** — the paper's contribution: monotonic deep
//! cardinality estimation of similarity selection.
//!
//! The estimator is `ĉ = g ∘ h`: feature extraction `h` (the `cardest-fx`
//! crate) maps any record + threshold into a Hamming space, and the
//! regression `g` (this crate) predicts the cardinality as the sum of
//! per-distance decoders `g(x, τ) = Σ_{i=0..τ} g_i(x)` (§3.3, Eq. 1).
//! Because every `g_i` is deterministic and non-negative (ReLU decoder over a
//! deterministic encoder), the estimate is monotonically increasing in the
//! threshold — Lemmas 1 and 2.
//!
//! Modules:
//! * [`estimator`] — the [`CardinalityEstimator`] trait every method in the
//!   workspace implements (the v2 prepare → curve → estimate API:
//!   [`PreparedQuery`], [`CardinalityCurve`], [`Estimate`], batch-first
//!   [`estimator::CardinalityEstimator::estimate_batch`]), plus the trained
//!   CardNet wrapper;
//! * [`metrics`] — per-thread extraction/encoder/decoder counters that make
//!   the "one encoder pass per τ-sweep" claim checkable;
//! * [`features`] — workload → training tensors (per-distance targets, `P(τ)`);
//! * [`model`] — the encoder Ψ (VAE ⊕ distance embeddings ⊕ shared Φ),
//!   decoders, and the accelerated Φ′ of §7;
//! * [`train`] — MSLE + dynamic per-distance loss (Eq. 2–3), validation-driven
//!   ω updates, VAE pre-training, snapshots;
//! * [`incremental`] — incremental learning for dataset updates (§8).
//!
//! Train a small CardNet and observe the structural guarantee — estimates
//! never decrease as the threshold grows, even on a barely trained model:
//!
//! ```
//! use cardest_core::{train_cardnet, CardNetConfig, CardNetEstimator, CardinalityEstimator};
//! use cardest_core::train::TrainerOptions;
//! use cardest_data::synth::{hm_imagenet, SynthConfig};
//! use cardest_data::Workload;
//! use cardest_fx::build_extractor;
//!
//! let ds = hm_imagenet(SynthConfig::new(150, 9));
//! let fx = build_extractor(&ds, 10, 1);
//! let split = Workload::sample_from(&ds, 0.3, 8, 2).split(3);
//!
//! let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
//! cfg.phi_hidden = vec![16];
//! cfg.z_dim = 8;
//! cfg = cfg.without_vae();
//! let opts = TrainerOptions { epochs: 2, vae_epochs: 0, ..TrainerOptions::quick() };
//! let (trainer, report) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
//! assert!(report.best_val_msle.is_finite());
//!
//! let est = CardNetEstimator::from_trainer(fx, trainer);
//! let query = ds.records[0].clone();
//! let estimates: Vec<f64> =
//!     (0..=10).map(|i| est.estimate(&query, ds.theta_max * f64::from(i) / 10.0)).collect();
//! assert!(estimates.windows(2).all(|w| w[1] >= w[0] - 1e-9), "not monotone: {estimates:?}");
//!
//! // τ-sweeps should go through the prepared-query API instead: feature
//! // extraction and the encoder run once, the whole curve comes back in one
//! // call, and the final point is bit-identical to `estimate`.
//! let prepared = est.prepare(&query);
//! let curve = est.curve(&prepared, ds.theta_max);
//! assert!(curve.is_non_decreasing());
//! assert_eq!(curve.last().to_bits(), est.estimate(&query, ds.theta_max).to_bits());
//! ```

pub mod estimator;
pub mod features;
pub mod incremental;
pub mod metrics;
pub mod model;
pub mod snapshot;
pub mod train;

pub use cardest_nn::{KernelBackend, Parallelism};
pub use estimator::{
    next_instance_id, prepared_feature_matrix, prepared_features_into, CardNetEstimator,
    CardinalityCurve, CardinalityEstimator, Estimate, PreparedQuery,
};
pub use features::{prepare_tensors, TrainTensors};
pub use incremental::{IncrementalLearner, UpdateOutcome};
pub use model::{CardNetConfig, CardNetModel, EncoderKind};
pub use snapshot::{Snapshot, SnapshotError};
pub use train::{train_cardnet, TrainReport, Trainer, TrainerOptions};
