//! Per-thread instrumentation counters for the estimation hot path, with a
//! global drain so **process totals are exact**.
//!
//! The Estimator API's whole point is that a τ-sweep over k thresholds does
//! **one** feature extraction and **one** encoder pass instead of k. These
//! counters make that claim checkable: the CardNet inference paths bump them
//! on every `h_rec` extraction, every encoder forward, and every decoder
//! evaluation, and the `exp_api_sweep` bench smoke (and any unit test) can
//! snapshot them around a sweep and assert the exact ratio.
//!
//! Two views exist over the same counters:
//!
//! - **Per-thread** ([`ApiCounters::snapshot`] / [`ApiCounters::delta_since`])
//!   — each thread observes only the estimation work it performed itself, so
//!   exact-ratio assertions stay deterministic under a parallel test runner.
//! - **Process-wide** ([`ApiCounters::process_totals`]) — every thread's
//!   slab is registered in a global list at first use and *drained into a
//!   retired accumulator when the thread exits*, so totals never lose the
//!   contribution of short-lived pool workers. `process_totals` = retired +
//!   the live slabs of all currently-running threads.
//!
//! Counters are relaxed atomics on a thread-owned cache line: uncontended
//! `fetch_add`s, cheap enough for the per-extraction hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// One thread's counter slab. Written only by the owning thread (relaxed
/// stores); read by anyone computing process totals.
#[derive(Debug, Default)]
struct Slab {
    extractions: AtomicU64,
    encoder_passes: AtomicU64,
    decoder_calls: AtomicU64,
    sheds: AtomicU64,
    degraded_answers: AtomicU64,
    encoder_ns: AtomicU64,
    decoder_ns: AtomicU64,
}

impl Slab {
    fn read(&self) -> ApiCounters {
        ApiCounters {
            extractions: self.extractions.load(Ordering::Relaxed),
            encoder_passes: self.encoder_passes.load(Ordering::Relaxed),
            decoder_calls: self.decoder_calls.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            degraded_answers: self.degraded_answers.load(Ordering::Relaxed),
            encoder_ns: self.encoder_ns.load(Ordering::Relaxed),
            decoder_ns: self.decoder_ns.load(Ordering::Relaxed),
        }
    }

    fn add(&self, c: &ApiCounters) {
        self.extractions.fetch_add(c.extractions, Ordering::Relaxed);
        self.encoder_passes
            .fetch_add(c.encoder_passes, Ordering::Relaxed);
        self.decoder_calls
            .fetch_add(c.decoder_calls, Ordering::Relaxed);
        self.sheds.fetch_add(c.sheds, Ordering::Relaxed);
        self.degraded_answers
            .fetch_add(c.degraded_answers, Ordering::Relaxed);
        self.encoder_ns.fetch_add(c.encoder_ns, Ordering::Relaxed);
        self.decoder_ns.fetch_add(c.decoder_ns, Ordering::Relaxed);
    }
}

/// Global registry: live per-thread slabs plus the retired accumulator that
/// exited threads drain into. Guarded by one mutex taken only on thread
/// start/exit and on `process_totals` — never on the counting hot path.
struct Registry {
    live: Mutex<Vec<Arc<Slab>>>,
    retired: Slab,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        live: Mutex::new(Vec::new()),
        retired: Slab::default(),
    })
}

/// Thread-local handle. Registers the slab on first use; the `Drop` at
/// thread exit drains the slab into the retired accumulator and removes it
/// from the live list **atomically under the registry lock**, so a racing
/// `process_totals` never double-counts or misses an exiting thread.
struct LocalHandle {
    slab: Arc<Slab>,
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let reg = registry();
        let mut live = reg.live.lock().unwrap();
        reg.retired.add(&self.slab.read());
        live.retain(|s| !Arc::ptr_eq(s, &self.slab));
    }
}

thread_local! {
    static LOCAL: LocalHandle = {
        let slab = Arc::new(Slab::default());
        registry().live.lock().unwrap().push(Arc::clone(&slab));
        LocalHandle { slab }
    };
}

#[inline]
fn with_slab(f: impl FnOnce(&Slab)) {
    // `with` can fail only during thread teardown after the handle dropped;
    // counts from that window are unattributable and safely ignored.
    let _ = LOCAL.try_with(|h| f(&h.slab));
}

/// Records one `h_rec` feature extraction (record → bit vector).
pub fn record_extraction() {
    with_slab(|s| {
        s.extractions.fetch_add(1, Ordering::Relaxed);
    });
}

/// Records one encoder forward pass (VAE latent + Ψ embeddings), whatever
/// the batch size — batching is the point, so a batched pass counts once.
pub fn record_encoder_pass() {
    with_slab(|s| {
        s.encoder_passes.fetch_add(1, Ordering::Relaxed);
    });
}

/// Records `n` per-distance decoder evaluations (`g_i`).
pub fn record_decoder_calls(n: u64) {
    with_slab(|s| {
        s.decoder_calls.fetch_add(n, Ordering::Relaxed);
    });
}

/// Records one load-shed decision: a request refused a model run by
/// admission control or an expired deadline (whether or not a degraded
/// answer was still possible).
pub fn record_shed() {
    with_slab(|s| {
        s.sheds.fetch_add(1, Ordering::Relaxed);
    });
}

/// Records one **degraded** answer: a shed request answered from a monotone
/// cache bracket instead of a model run. Always ≤ [`record_shed`]'s count —
/// the difference is hard rejects.
pub fn record_degraded_answer() {
    with_slab(|s| {
        s.degraded_answers.fetch_add(1, Ordering::Relaxed);
    });
}

/// Records wall-clock time spent in encoder forward passes (feature/latent
/// matmuls). Feeds the `encoder_pass` tracing span in the serving layer.
pub fn record_encoder_time(d: Duration) {
    let ns = d.as_nanos().min(u64::MAX as u128) as u64;
    with_slab(|s| {
        s.encoder_ns.fetch_add(ns, Ordering::Relaxed);
    });
}

/// Records wall-clock time spent in monotone decoder sweeps.
pub fn record_decoder_time(d: Duration) {
    let ns = d.as_nanos().min(u64::MAX as u128) as u64;
    with_slab(|s| {
        s.decoder_ns.fetch_add(ns, Ordering::Relaxed);
    });
}

/// A point-in-time snapshot of estimation counters — either one thread's
/// ([`ApiCounters::snapshot`]) or the whole process's
/// ([`ApiCounters::process_totals`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApiCounters {
    pub extractions: u64,
    pub encoder_passes: u64,
    pub decoder_calls: u64,
    /// Load-shed decisions (serving layer: admission control / deadlines).
    pub sheds: u64,
    /// Degraded answers served from a monotone cache bracket.
    pub degraded_answers: u64,
    /// Nanoseconds spent in encoder forward passes.
    pub encoder_ns: u64,
    /// Nanoseconds spent in monotone decoder sweeps.
    pub decoder_ns: u64,
}

impl ApiCounters {
    /// Current totals for the calling thread.
    pub fn snapshot() -> ApiCounters {
        let mut out = ApiCounters::default();
        let _ = LOCAL.try_with(|h| out = h.slab.read());
        out
    }

    /// Exact process-wide totals: counts drained from every exited thread
    /// plus the live slabs of all running threads. Taking the registry lock
    /// makes this linearizable against thread exit — a worker's counts are
    /// visible either in its live slab or in the retired accumulator, never
    /// neither and never both.
    pub fn process_totals() -> ApiCounters {
        let reg = registry();
        let live = reg.live.lock().unwrap();
        let mut total = reg.retired.read();
        for slab in live.iter() {
            total = total.saturating_add(&slab.read());
        }
        total
    }

    /// Counter movement since an earlier snapshot on the same thread (or
    /// between two `process_totals` calls).
    pub fn delta_since(&self, earlier: &ApiCounters) -> ApiCounters {
        ApiCounters {
            extractions: self.extractions - earlier.extractions,
            encoder_passes: self.encoder_passes - earlier.encoder_passes,
            decoder_calls: self.decoder_calls - earlier.decoder_calls,
            sheds: self.sheds - earlier.sheds,
            degraded_answers: self.degraded_answers - earlier.degraded_answers,
            encoder_ns: self.encoder_ns - earlier.encoder_ns,
            decoder_ns: self.decoder_ns - earlier.decoder_ns,
        }
    }

    fn saturating_add(&self, other: &ApiCounters) -> ApiCounters {
        ApiCounters {
            extractions: self.extractions.saturating_add(other.extractions),
            encoder_passes: self.encoder_passes.saturating_add(other.encoder_passes),
            decoder_calls: self.decoder_calls.saturating_add(other.decoder_calls),
            sheds: self.sheds.saturating_add(other.sheds),
            degraded_answers: self.degraded_answers.saturating_add(other.degraded_answers),
            encoder_ns: self.encoder_ns.saturating_add(other.encoder_ns),
            decoder_ns: self.decoder_ns.saturating_add(other.decoder_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff_exactly() {
        let before = ApiCounters::snapshot();
        record_extraction();
        record_encoder_pass();
        record_encoder_pass();
        record_decoder_calls(3);
        record_shed();
        record_shed();
        record_degraded_answer();
        record_encoder_time(Duration::from_nanos(500));
        record_decoder_time(Duration::from_nanos(200));
        let delta = ApiCounters::snapshot().delta_since(&before);
        // Exact equality is safe: counters are thread-local and this test's
        // thread performs no other estimation work.
        assert_eq!(delta.extractions, 1);
        assert_eq!(delta.encoder_passes, 2);
        assert_eq!(delta.decoder_calls, 3);
        assert_eq!(delta.sheds, 2);
        assert_eq!(delta.degraded_answers, 1);
        assert_eq!(delta.encoder_ns, 500);
        assert_eq!(delta.decoder_ns, 200);
    }

    #[test]
    fn short_lived_worker_counts_survive_thread_exit() {
        // Regression test for the worker-thread loss bug: counts recorded on
        // a pool thread must remain visible in process totals after the
        // thread exits (previously they vanished with the thread-local).
        let before = ApiCounters::process_totals();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    record_extraction();
                    record_encoder_pass();
                    record_decoder_calls(17);
                    record_encoder_time(Duration::from_nanos(1000));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let delta = ApiCounters::process_totals().delta_since(&before);
        // `>=` not `==`: other tests run concurrently in this process and
        // may bump the same process-wide totals.
        assert!(delta.extractions >= 4, "lost extractions: {delta:?}");
        assert!(delta.encoder_passes >= 4, "lost encoder passes: {delta:?}");
        assert!(delta.decoder_calls >= 68, "lost decoder calls: {delta:?}");
        assert!(delta.encoder_ns >= 4000, "lost encoder time: {delta:?}");
    }

    #[test]
    fn process_totals_see_live_threads() {
        use std::sync::mpsc;
        // A still-running thread's counts must be visible without waiting
        // for its exit.
        let before = ApiCounters::process_totals();
        let (ready_tx, ready_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let h = std::thread::spawn(move || {
            record_shed();
            record_degraded_answer();
            ready_tx.send(()).unwrap();
            // Hold the thread alive until the main thread has observed.
            done_rx.recv().unwrap();
        });
        ready_rx.recv().unwrap();
        let delta = ApiCounters::process_totals().delta_since(&before);
        assert!(delta.sheds >= 1);
        assert!(delta.degraded_answers >= 1);
        done_tx.send(()).unwrap();
        h.join().unwrap();
    }
}
