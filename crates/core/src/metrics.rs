//! Per-thread instrumentation counters for the estimation hot path.
//!
//! The Estimator API's whole point is that a τ-sweep over k thresholds does
//! **one** feature extraction and **one** encoder pass instead of k. These
//! counters make that claim checkable: the CardNet inference paths bump them
//! on every `h_rec` extraction, every encoder forward, and every decoder
//! evaluation, and the `exp_api_sweep` bench smoke (and any unit test) can
//! snapshot them around a sweep and assert the exact ratio.
//!
//! Counters are **thread-local** so assertions stay exact under a parallel
//! test runner: each thread observes only the estimation work it performed
//! itself. (A worker pool therefore counts per worker; aggregate across
//! threads yourself if you need a process total.)

use std::cell::Cell;

thread_local! {
    static EXTRACTIONS: Cell<u64> = const { Cell::new(0) };
    static ENCODER_PASSES: Cell<u64> = const { Cell::new(0) };
    static DECODER_CALLS: Cell<u64> = const { Cell::new(0) };
    static SHEDS: Cell<u64> = const { Cell::new(0) };
    static DEGRADED_ANSWERS: Cell<u64> = const { Cell::new(0) };
}

/// Records one `h_rec` feature extraction (record → bit vector).
pub fn record_extraction() {
    EXTRACTIONS.with(|c| c.set(c.get() + 1));
}

/// Records one encoder forward pass (VAE latent + Ψ embeddings), whatever
/// the batch size — batching is the point, so a batched pass counts once.
pub fn record_encoder_pass() {
    ENCODER_PASSES.with(|c| c.set(c.get() + 1));
}

/// Records `n` per-distance decoder evaluations (`g_i`).
pub fn record_decoder_calls(n: u64) {
    DECODER_CALLS.with(|c| c.set(c.get() + n));
}

/// Records one load-shed decision: a request refused a model run by
/// admission control or an expired deadline (whether or not a degraded
/// answer was still possible).
pub fn record_shed() {
    SHEDS.with(|c| c.set(c.get() + 1));
}

/// Records one **degraded** answer: a shed request answered from a monotone
/// cache bracket instead of a model run. Always ≤ [`record_shed`]'s count —
/// the difference is hard rejects.
pub fn record_degraded_answer() {
    DEGRADED_ANSWERS.with(|c| c.set(c.get() + 1));
}

/// A point-in-time snapshot of the calling thread's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApiCounters {
    pub extractions: u64,
    pub encoder_passes: u64,
    pub decoder_calls: u64,
    /// Load-shed decisions (serving layer: admission control / deadlines).
    pub sheds: u64,
    /// Degraded answers served from a monotone cache bracket.
    pub degraded_answers: u64,
}

impl ApiCounters {
    /// Current totals for the calling thread.
    pub fn snapshot() -> ApiCounters {
        ApiCounters {
            extractions: EXTRACTIONS.with(Cell::get),
            encoder_passes: ENCODER_PASSES.with(Cell::get),
            decoder_calls: DECODER_CALLS.with(Cell::get),
            sheds: SHEDS.with(Cell::get),
            degraded_answers: DEGRADED_ANSWERS.with(Cell::get),
        }
    }

    /// Counter movement since an earlier snapshot on the same thread.
    pub fn delta_since(&self, earlier: &ApiCounters) -> ApiCounters {
        ApiCounters {
            extractions: self.extractions - earlier.extractions,
            encoder_passes: self.encoder_passes - earlier.encoder_passes,
            decoder_calls: self.decoder_calls - earlier.decoder_calls,
            sheds: self.sheds - earlier.sheds,
            degraded_answers: self.degraded_answers - earlier.degraded_answers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff_exactly() {
        let before = ApiCounters::snapshot();
        record_extraction();
        record_encoder_pass();
        record_encoder_pass();
        record_decoder_calls(3);
        record_shed();
        record_shed();
        record_degraded_answer();
        let delta = ApiCounters::snapshot().delta_since(&before);
        // Exact equality is safe: counters are thread-local and this test's
        // thread performs no other estimation work.
        assert_eq!(delta.extractions, 1);
        assert_eq!(delta.encoder_passes, 2);
        assert_eq!(delta.decoder_calls, 3);
        assert_eq!(delta.sheds, 2);
        assert_eq!(delta.degraded_answers, 1);
    }
}
